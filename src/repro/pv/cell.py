"""Single-diode photovoltaic cell model.

The paper characterises an off-the-shelf IXYS KXOB22-04X3F
monocrystalline cell (22 x 7 mm, ~22% conversion efficiency, three
junctions in series) with a variable load under different light levels
(Fig. 2).  The optimization machinery in :mod:`repro.core` consumes only
the I-V / P-V curve family, so we reproduce the measurement with the
standard single-diode equivalent circuit:

    I(V) = Iph - I0 * (exp((V + I*Rs) / (n * Ns * Vt)) - 1) - (V + I*Rs) / Rsh

where ``Iph`` scales linearly with irradiance and the open-circuit
voltage therefore shifts logarithmically with light level -- exactly the
behaviour visible in the paper's measured curves.

The implicit equation (series resistance couples I and V) is solved with
a damped Newton iteration that is vectorised over voltage arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, ModelParameterError
from repro.units import micro_amps, milli_amps, thermal_voltage

_NEWTON_MAX_ITERATIONS = 100
_NEWTON_TOLERANCE_A = 1e-12


@dataclass(frozen=True)
class SingleDiodeCell:
    """A photovoltaic cell described by the single-diode model.

    Parameters
    ----------
    photo_current_full_sun_a:
        Photogenerated current at irradiance 1.0 (the paper's "outdoor
        strong light") in amperes.
    saturation_current_a:
        Diode reverse saturation current ``I0`` in amperes.  Together
        with the ideality factor it sets the open-circuit voltage.
    ideality_factor:
        Diode ideality factor ``n`` (dimensionless, typically 1-2).
    series_cells:
        Number of junctions in series (``Ns``); the KXOB22-04X3F has 3.
    series_resistance_ohm:
        Lumped series resistance ``Rs``.
    shunt_resistance_ohm:
        Lumped shunt resistance ``Rsh``.
    temperature_k:
        Junction temperature; sets the thermal voltage.

    All methods take an ``irradiance`` keyword in [0, ~1.2] where 1.0 is
    full sun.  Values slightly above 1.0 model direct summer sunlight.
    """

    photo_current_full_sun_a: float
    saturation_current_a: float
    ideality_factor: float = 1.5
    series_cells: int = 3
    series_resistance_ohm: float = 1.0
    shunt_resistance_ohm: float = 5000.0
    temperature_k: float = 300.15

    def __post_init__(self) -> None:
        if self.photo_current_full_sun_a <= 0.0:
            raise ModelParameterError(
                f"photo current must be positive, got {self.photo_current_full_sun_a}"
            )
        if self.saturation_current_a <= 0.0:
            raise ModelParameterError(
                f"saturation current must be positive, got {self.saturation_current_a}"
            )
        if self.ideality_factor <= 0.0:
            raise ModelParameterError(
                f"ideality factor must be positive, got {self.ideality_factor}"
            )
        if self.series_cells < 1:
            raise ModelParameterError(
                f"series cell count must be >= 1, got {self.series_cells}"
            )
        if self.series_resistance_ohm < 0.0:
            raise ModelParameterError(
                f"series resistance must be non-negative, got {self.series_resistance_ohm}"
            )
        if self.shunt_resistance_ohm <= 0.0:
            raise ModelParameterError(
                f"shunt resistance must be positive, got {self.shunt_resistance_ohm}"
            )

    # -- derived scales ----------------------------------------------------

    @property
    def diode_scale_v(self) -> float:
        """The exponential slope ``n * Ns * Vt`` of the diode knee [V]."""
        return (
            self.ideality_factor
            * self.series_cells
            * thermal_voltage(self.temperature_k)
        )

    def photo_current(self, irradiance: float) -> float:
        """Photogenerated current at the given irradiance [A]."""
        if irradiance < 0.0:
            raise ModelParameterError(f"irradiance must be >= 0, got {irradiance}")
        return self.photo_current_full_sun_a * irradiance

    def at_temperature(self, temperature_k: float) -> "SingleDiodeCell":
        """This cell re-evaluated at a different junction temperature.

        Outdoor cells run tens of kelvin above ambient; the dominant
        effect is the open-circuit voltage dropping roughly 2 mV/K per
        junction, driven by the saturation current's strong temperature
        dependence ``I0 ~ T^3 exp(-Eg / kT)`` (silicon bandgap
        ``Eg ~ 1.12 eV``).  Photocurrent has a weak positive
        coefficient (~0.05%/K), included for completeness.
        """
        if temperature_k <= 0.0:
            raise ModelParameterError(
                f"temperature must be positive, got {temperature_k}"
            )
        t_old = self.temperature_k
        bandgap_ev = 1.12
        vt_old = thermal_voltage(t_old)
        vt_new = thermal_voltage(temperature_k)
        ratio = temperature_k / t_old
        i0_new = (
            self.saturation_current_a
            * ratio**3
            * float(
                np.exp(
                    bandgap_ev / self.ideality_factor * (1.0 / vt_old - 1.0 / vt_new)
                )
            )
        )
        iph_new = self.photo_current_full_sun_a * (
            1.0 + 0.0005 * (temperature_k - t_old)
        )
        return SingleDiodeCell(
            photo_current_full_sun_a=iph_new,
            saturation_current_a=i0_new,
            ideality_factor=self.ideality_factor,
            series_cells=self.series_cells,
            series_resistance_ohm=self.series_resistance_ohm,
            shunt_resistance_ohm=self.shunt_resistance_ohm,
            temperature_k=temperature_k,
        )

    # -- terminal characteristics ------------------------------------------

    def current(
        self, voltage: "float | np.ndarray", irradiance: float = 1.0
    ) -> "float | np.ndarray":
        """Terminal current at the given terminal voltage(s) [A].

        Accepts a scalar or a numpy array of voltages; the return type
        matches the input.  Negative currents (the load pushing the cell
        past its open-circuit voltage) are reported faithfully rather
        than clipped, because the transient simulator relies on the
        restoring sign to find the stable operating point.
        """
        voltage_arr = np.atleast_1d(np.asarray(voltage, dtype=float))
        iph = self.photo_current(irradiance)
        scale = self.diode_scale_v

        # Newton iteration on f(I) = Iph - I0*(exp((V+I*Rs)/scale)-1)
        #                            - (V+I*Rs)/Rsh - I = 0
        current_arr = np.clip(
            iph - self._ideal_diode_current(voltage_arr, iph), -iph - 1e-3, iph
        )
        if self.series_resistance_ohm == 0.0:
            result = (
                iph
                - self._ideal_diode_current(voltage_arr, iph)
                - voltage_arr / self.shunt_resistance_ohm
            )
            return self._match_shape(result, voltage)

        rs = self.series_resistance_ohm
        rsh = self.shunt_resistance_ohm
        converged = False
        for _ in range(_NEWTON_MAX_ITERATIONS):
            diode_v = voltage_arr + current_arr * rs
            exp_term = np.exp(np.clip(diode_v / scale, -60.0, 60.0))
            f = (
                iph
                - self.saturation_current_a * (exp_term - 1.0)
                - diode_v / rsh
                - current_arr
            )
            df = -self.saturation_current_a * exp_term * rs / scale - rs / rsh - 1.0
            step = f / df
            current_arr = current_arr - step
            if np.max(np.abs(step)) < _NEWTON_TOLERANCE_A:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                "single-diode Newton iteration failed to converge; "
                f"max residual step {np.max(np.abs(step)):.3e} A"
            )
        return self._match_shape(current_arr, voltage)

    def current_scalar(
        self,
        voltage: float,
        irradiance: float = 1.0,
        guess: "float | None" = None,
    ) -> float:
        """Terminal current at one scalar voltage, without array machinery [A].

        This is the transient simulator's hot path: the same damped
        Newton iteration as :meth:`current`, expressed in plain floats.
        Every operation mirrors the array path exactly -- same seed,
        same clip bounds, same expression order, and scalar ``np.exp``
        (which is bit-identical to the vectorised ``np.exp`` element,
        unlike ``math.exp``) -- so the cold-started result equals
        ``float(self.current(voltage, irradiance))`` bit for bit.

        ``guess`` optionally warm-starts the iteration (e.g. from the
        previous time step's converged current).  A warm start converges
        in fewer iterations but may settle on a *different* last-bit
        representation of the root: the floating-point Newton map has
        several attracting fixed points within ~1e-16 A of each other,
        so warm-started results agree with the cold path only to the
        solver tolerance (measured divergence < 1e-15 A; see
        ``docs/performance.md``).  The engine therefore cold-starts.
        """
        iph = self.photo_current(irradiance)
        scale = self.diode_scale_v
        i0 = self.saturation_current_a
        rsh = self.shunt_resistance_ohm

        exponent = voltage / scale
        if exponent < -60.0:
            exponent = -60.0
        elif exponent > 60.0:
            exponent = 60.0
        ideal = i0 * (float(np.exp(exponent)) - 1.0)

        if self.series_resistance_ohm == 0.0:
            return iph - ideal - voltage / rsh

        rs = self.series_resistance_ohm
        if guess is None:
            seed = iph - ideal
            lo = -iph - 1e-3
            if seed < lo:
                seed = lo
            elif seed > iph:
                seed = iph
            current = seed
        else:
            current = guess
        for _ in range(_NEWTON_MAX_ITERATIONS):
            diode_v = voltage + current * rs
            exponent = diode_v / scale
            if exponent < -60.0:
                exponent = -60.0
            elif exponent > 60.0:
                exponent = 60.0
            exp_term = float(np.exp(exponent))
            f = iph - i0 * (exp_term - 1.0) - diode_v / rsh - current
            df = -i0 * exp_term * rs / scale - rs / rsh - 1.0
            step = f / df
            current = current - step
            if abs(step) < _NEWTON_TOLERANCE_A:
                return current
        raise ConvergenceError(
            "single-diode Newton iteration failed to converge; "
            f"max residual step {abs(step):.3e} A"
        )

    def power(
        self, voltage: "float | np.ndarray", irradiance: float = 1.0
    ) -> "float | np.ndarray":
        """Delivered power ``V * I(V)`` at the terminal voltage(s) [W]."""
        return np.asarray(voltage, dtype=float) * self.current(voltage, irradiance)

    def open_circuit_voltage(
        self,
        irradiance: float = 1.0,
        tolerance_v: float = 1e-9,
        max_iterations: int = 200,
    ) -> float:
        """Open-circuit voltage ``Voc`` at the given irradiance [V].

        Solved by bisection on the terminal current; at zero irradiance
        the cell produces nothing and ``Voc`` is 0.  Raises
        :class:`~repro.errors.ConvergenceError` if the bracket has not
        shrunk below ``tolerance_v`` within ``max_iterations`` (the
        bracket halves every iteration, so the defaults always converge
        in ~31 iterations; a tighter budget exists for tests).
        """
        if tolerance_v <= 0.0:
            raise ModelParameterError(
                f"tolerance must be positive, got {tolerance_v}"
            )
        if max_iterations < 1:
            raise ModelParameterError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        iph = self.photo_current(irradiance)
        if iph == 0.0:
            return 0.0
        # Ideal-diode estimate as the upper bracket (shunt only lowers Voc).
        upper = self.diode_scale_v * float(
            np.log1p(iph / self.saturation_current_a)
        )
        lower = 0.0
        converged = False
        for _ in range(max_iterations):
            mid = 0.5 * (lower + upper)
            if float(self.current(mid, irradiance)) > 0.0:
                lower = mid
            else:
                upper = mid
            if upper - lower < tolerance_v:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                "open-circuit bisection did not shrink the bracket below "
                f"{tolerance_v:g} V in {max_iterations} iterations "
                f"(bracket width {upper - lower:.3e} V)"
            )
        return 0.5 * (lower + upper)

    def short_circuit_current(self, irradiance: float = 1.0) -> float:
        """Short-circuit current ``Isc`` at the given irradiance [A]."""
        return float(self.current(0.0, irradiance))

    # -- internals ----------------------------------------------------------

    def _ideal_diode_current(self, voltage_arr: np.ndarray, iph: float) -> np.ndarray:
        """Diode current ignoring series resistance (Newton seed)."""
        del iph  # seed does not depend on it; kept for signature clarity
        exponent = np.clip(voltage_arr / self.diode_scale_v, -60.0, 60.0)
        return self.saturation_current_a * (np.exp(exponent) - 1.0)

    @staticmethod
    def _match_shape(
        result: np.ndarray, template: "float | np.ndarray"
    ) -> "float | np.ndarray":
        if np.isscalar(template) or getattr(template, "ndim", 1) == 0:
            return float(result[0])
        return result


def kxob22_cell() -> SingleDiodeCell:
    """The paper's solar cell, calibrated to the IXYS KXOB22-04X3F class.

    Calibration targets taken from the paper's measurements:

    * Fig. 8(b): short-circuit current up to ~16 mA, open-circuit voltage
      around 1.5 V at strong outdoor light.
    * Fig. 6(a): maximum power point near 14-15 mW at ~1.1-1.2 V.
    * Fig. 2 / Fig. 7(a): at half and quarter light the current scales
      proportionally while the knee voltage shifts down slightly.

    The resulting model at irradiance 1.0 yields Isc ~ 13 mA,
    Voc ~ 1.5 V and Pmpp ~ 14.5 mW at Vmpp ~ 1.2 V.
    """
    return SingleDiodeCell(
        photo_current_full_sun_a=milli_amps(13.2),
        saturation_current_a=micro_amps(0.03),
        ideality_factor=1.5,
        series_cells=3,
        series_resistance_ohm=1.5,
        shunt_resistance_ohm=8000.0,
    )
