"""Photovoltaic harvester substrate.

Models the paper's energy source: a small monocrystalline solar cell
(IXYS KXOB22-04X3F class, three series junctions, ~22 x 7 mm) whose
measured I-V family under variable light is Fig. 2 of the paper.  The
single-diode model here generates the same curve family from physical
parameters: photocurrent proportional to irradiance, an exponential
diode knee, and shunt/series parasitics.
"""

from repro.pv.cell import SingleDiodeCell, kxob22_cell
from repro.pv.environment import (
    LightCondition,
    FULL_SUN,
    HALF_SUN,
    QUARTER_SUN,
    INDOOR,
    STANDARD_CONDITIONS,
)
from repro.pv.mpp import MaximumPowerPoint, find_mpp
from repro.pv.traces import (
    IrradianceTrace,
    constant_trace,
    step_trace,
    ramp_trace,
    cloud_trace,
    random_walk_trace,
    scaled_trace,
    overlay_flicker,
)

__all__ = [
    "SingleDiodeCell",
    "kxob22_cell",
    "LightCondition",
    "FULL_SUN",
    "HALF_SUN",
    "QUARTER_SUN",
    "INDOOR",
    "STANDARD_CONDITIONS",
    "MaximumPowerPoint",
    "find_mpp",
    "IrradianceTrace",
    "constant_trace",
    "step_trace",
    "ramp_trace",
    "cloud_trace",
    "random_walk_trace",
    "scaled_trace",
    "overlay_flicker",
]
