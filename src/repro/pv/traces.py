"""Irradiance-versus-time traces.

The paper's dynamic experiments (Figs. 8, 9(b), 11(b)) are driven by a
bench light that is dimmed mid-run.  We cannot reproduce the bench, so
this module generates the synthetic equivalents: step dimming, linear
ramps, passing-cloud profiles and seeded stochastic traces.  Every
generator is deterministic given its arguments (stochastic ones take an
explicit seed), so experiments replay exactly.

A trace is a piecewise-linear function of time built from breakpoints;
evaluation between breakpoints interpolates linearly, before the first
breakpoint holds the first value, and after the last holds the last
value.  This representation is exact for the step/ramp profiles the
paper uses and cheap to evaluate inside the transient simulator's inner
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class IrradianceTrace:
    """Piecewise-linear irradiance as a function of time.

    ``times_s`` must be strictly increasing; ``values`` are relative
    irradiances (1.0 = full sun) and must be non-negative.
    """

    times_s: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.values):
            raise ModelParameterError(
                f"times ({len(self.times_s)}) and values ({len(self.values)}) "
                "must have the same length"
            )
        if not self.times_s:
            raise ModelParameterError("a trace needs at least one breakpoint")
        if any(b <= a for a, b in zip(self.times_s, self.times_s[1:])):
            raise ModelParameterError("trace times must be strictly increasing")
        if any(v < 0.0 for v in self.values):
            raise ModelParameterError("irradiance values must be non-negative")

    def __call__(self, time_s: float) -> float:
        """Irradiance at ``time_s`` (scalar)."""
        return float(np.interp(time_s, self.times_s, self.values))

    def sample(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorised evaluation over an array of times."""
        return np.interp(np.asarray(times_s, dtype=float), self.times_s, self.values)

    def step_samples(self, time_step_s: float, steps: int) -> np.ndarray:
        """Irradiance at the simulator's ``steps + 1`` forward-Euler instants.

        The engine's loop builds its time axis by repeated accumulation
        (``t_0 = 0``, ``t_k = t_{k-1} + dt``); ``np.cumsum`` accumulates
        the same way, and vectorised ``np.interp`` evaluates each element
        exactly like the scalar call, so this precomputation is
        bit-identical to evaluating ``self(t)`` inside the loop -- it
        just pays the interpolation cost once instead of once per step.
        """
        if time_step_s <= 0.0:
            raise ModelParameterError(
                f"time step must be positive, got {time_step_s}"
            )
        if steps < 0:
            raise ModelParameterError(f"steps must be >= 0, got {steps}")
        times = np.empty(steps + 1)
        times[0] = 0.0
        if steps:
            np.cumsum(np.full(steps, time_step_s), out=times[1:])
        return self.sample(times)

    @property
    def duration_s(self) -> float:
        """Time of the last breakpoint."""
        return self.times_s[-1]

    def mean(self, start_s: float = 0.0, end_s: "float | None" = None) -> float:
        """Time-averaged irradiance over ``[start_s, end_s]``.

        Computed exactly from the piecewise-linear segments (trapezoid
        integral), not by sampling.
        """
        if end_s is None:
            end_s = self.duration_s
        if end_s <= start_s:
            raise ModelParameterError(
                f"empty averaging window [{start_s}, {end_s}]"
            )
        interior = [t for t in self.times_s if start_s < t < end_s]
        knots = np.array([start_s, *interior, end_s])
        vals = self.sample(knots)
        return float(np.trapezoid(vals, knots) / (end_s - start_s))


def constant_trace(irradiance: float, duration_s: float = 1.0) -> IrradianceTrace:
    """Steady light at ``irradiance`` for ``duration_s`` seconds."""
    if duration_s <= 0.0:
        raise ModelParameterError(f"duration must be positive, got {duration_s}")
    return IrradianceTrace((0.0, duration_s), (irradiance, irradiance))


def step_trace(
    before: float,
    after: float,
    step_time_s: float,
    duration_s: float,
    transition_s: float = 1e-4,
) -> IrradianceTrace:
    """The paper's "dimmed light" event: a near-instant irradiance step.

    ``transition_s`` is the (short) linear transition width; a true
    discontinuity would make the simulator's event detection ambiguous,
    and a physical light dims over a finite time anyway.
    """
    if not 0.0 < step_time_s < duration_s:
        raise ModelParameterError(
            f"step time {step_time_s} must lie inside (0, {duration_s})"
        )
    if transition_s <= 0.0 or step_time_s + transition_s >= duration_s:
        raise ModelParameterError("transition must be positive and fit in the trace")
    return IrradianceTrace(
        (0.0, step_time_s, step_time_s + transition_s, duration_s),
        (before, before, after, after),
    )


def ramp_trace(
    start: float, end: float, duration_s: float
) -> IrradianceTrace:
    """Linear irradiance ramp, e.g. gradual sunset or a dimmer sweep."""
    if duration_s <= 0.0:
        raise ModelParameterError(f"duration must be positive, got {duration_s}")
    return IrradianceTrace((0.0, duration_s), (start, end))


def cloud_trace(
    base: float,
    dip: float,
    cloud_start_s: float,
    cloud_duration_s: float,
    total_duration_s: float,
    edge_s: float = 0.05,
) -> IrradianceTrace:
    """A passing cloud: dip from ``base`` to ``dip`` and recover.

    ``edge_s`` controls how fast the shadow edge sweeps the cell.
    """
    if dip > base:
        raise ModelParameterError("a cloud can only reduce irradiance")
    t0 = cloud_start_s
    t1 = t0 + edge_s
    t2 = t0 + cloud_duration_s
    t3 = t2 + edge_s
    if not 0.0 < t0 and t3 < total_duration_s:
        raise ModelParameterError("cloud must fit strictly inside the trace")
    if t1 >= t2:
        raise ModelParameterError("cloud duration must exceed its edge time")
    return IrradianceTrace(
        (0.0, t0, t1, t2, t3, total_duration_s),
        (base, base, dip, dip, base, base),
    )


def random_walk_trace(
    seed: int,
    duration_s: float,
    mean: float = 0.5,
    volatility: float = 0.1,
    breakpoints: int = 50,
    floor: float = 0.02,
    ceiling: float = 1.2,
) -> IrradianceTrace:
    """A seeded mean-reverting stochastic irradiance trace.

    Models the "energy volatility of the harvesting environment" the
    paper motivates with: an Ornstein-Uhlenbeck-style walk around
    ``mean``, clipped to ``[floor, ceiling]``.  Deterministic for a
    given seed.
    """
    if breakpoints < 2:
        raise ModelParameterError(f"need at least 2 breakpoints, got {breakpoints}")
    if duration_s <= 0.0:
        raise ModelParameterError(f"duration must be positive, got {duration_s}")
    if not 0.0 <= floor < ceiling:
        raise ModelParameterError(f"invalid bounds [{floor}, {ceiling}]")
    rng = np.random.default_rng(seed)
    times = np.linspace(0.0, duration_s, breakpoints)
    values = np.empty(breakpoints)
    values[0] = mean
    reversion = 0.3
    for i in range(1, breakpoints):
        drift = reversion * (mean - values[i - 1])
        values[i] = values[i - 1] + drift + volatility * rng.standard_normal()
    values = np.clip(values, floor, ceiling)
    return IrradianceTrace(tuple(times), tuple(values))


def flicker_trace(
    mean: float,
    depth: float,
    flicker_hz: float,
    duration_s: float,
    samples_per_cycle: int = 12,
) -> IrradianceTrace:
    """Indoor AC lighting flicker: a sinusoidal ripple on the mean.

    Mains-powered luminaires flicker at twice the line frequency
    (100/120 Hz) with modulation depths from a few percent (good LED
    drivers) to near-total (magnetic-ballast fluorescents).  An MPP
    tracker must *not* chase this ripple -- its settle-time filtering
    exists exactly for such disturbances -- which makes this trace the
    natural stress test for the Section VI-A controller.
    """
    if mean <= 0.0:
        raise ModelParameterError(f"mean must be positive, got {mean}")
    if not 0.0 <= depth <= 1.0:
        raise ModelParameterError(f"depth must be in [0, 1], got {depth}")
    if flicker_hz <= 0.0:
        raise ModelParameterError(
            f"flicker frequency must be positive, got {flicker_hz}"
        )
    if duration_s <= 0.0:
        raise ModelParameterError(f"duration must be positive, got {duration_s}")
    if samples_per_cycle < 6:
        raise ModelParameterError(
            f"need >= 6 samples per cycle, got {samples_per_cycle}"
        )
    points = max(int(duration_s * flicker_hz * samples_per_cycle), 2)
    times = np.linspace(0.0, duration_s, points)
    values = mean * (1.0 + depth * np.sin(2.0 * np.pi * flicker_hz * times))
    return IrradianceTrace(tuple(times), tuple(np.clip(values, 0.0, None)))


def diurnal_trace(
    duration_s: float,
    peak: float = 1.0,
    night_fraction: float = 0.3,
    cloud_seed: "int | None" = None,
    cloud_depth: float = 0.5,
    breakpoints: int = 96,
) -> IrradianceTrace:
    """One compressed day: night, a half-sine of sun, night again.

    ``duration_s`` maps the whole 24 h cycle onto a simulable span (a
    battery-less node's dynamics play out in milliseconds, so a
    "day" of tens of seconds exercises the same control paths).
    ``night_fraction`` is the share of the period spent dark at each
    end; an optional seeded cloud layer multiplies the daylight by
    ``1 - cloud_depth * noise``.
    """
    if duration_s <= 0.0:
        raise ModelParameterError(f"duration must be positive, got {duration_s}")
    if peak <= 0.0:
        raise ModelParameterError(f"peak must be positive, got {peak}")
    if not 0.0 <= night_fraction < 0.5:
        raise ModelParameterError(
            f"night fraction must be in [0, 0.5), got {night_fraction}"
        )
    if not 0.0 <= cloud_depth < 1.0:
        raise ModelParameterError(
            f"cloud depth must be in [0, 1), got {cloud_depth}"
        )
    if breakpoints < 8:
        raise ModelParameterError(
            f"need at least 8 breakpoints, got {breakpoints}"
        )
    times = np.linspace(0.0, duration_s, breakpoints)
    dawn = night_fraction * duration_s
    dusk = (1.0 - night_fraction) * duration_s
    values = np.zeros(breakpoints)
    daylight = (times > dawn) & (times < dusk)
    phase = (times[daylight] - dawn) / (dusk - dawn)
    values[daylight] = peak * np.sin(np.pi * phase)
    if cloud_seed is not None and cloud_depth > 0.0:
        rng = np.random.default_rng(cloud_seed)
        attenuation = 1.0 - cloud_depth * rng.random(daylight.sum())
        values[daylight] *= attenuation
    return IrradianceTrace(tuple(times), tuple(np.clip(values, 0.0, None)))


def scaled_trace(trace: IrradianceTrace, factor: float) -> IrradianceTrace:
    """Uniformly attenuate a trace: soiling, partial shading, a dirty
    diffuser over the bench light.

    ``factor`` is the transmitted fraction in (0, 1]; the breakpoints
    are preserved so the scaled trace is exact, not resampled.
    """
    if not 0.0 < factor <= 1.0:
        raise ModelParameterError(
            f"soiling/shading factor must be in (0, 1], got {factor}"
        )
    return IrradianceTrace(
        trace.times_s, tuple(v * factor for v in trace.values)
    )


def overlay_flicker(
    trace: IrradianceTrace,
    depth: float,
    flicker_hz: float,
    samples_per_cycle: int = 12,
    seed: "int | None" = None,
    depth_jitter: float = 0.0,
) -> IrradianceTrace:
    """Compose AC-lighting flicker onto an arbitrary base trace.

    Unlike :func:`flicker_trace` (which flickers a constant mean), this
    multiplies *any* trace -- step, ramp, diurnal -- by a sinusoidal
    ripple of the given ``depth`` at ``flicker_hz``.  With a ``seed``
    the ripple gets a random phase and, when ``depth_jitter`` > 0, a
    per-sample depth perturbation -- the stochastic flicker of a failing
    ballast.  Deterministic given the seed.

    The result's breakpoints are the union of the base trace's and the
    flicker sampling grid, so steps in the base survive exactly.
    """
    if not 0.0 <= depth <= 1.0:
        raise ModelParameterError(f"depth must be in [0, 1], got {depth}")
    if flicker_hz <= 0.0:
        raise ModelParameterError(
            f"flicker frequency must be positive, got {flicker_hz}"
        )
    if samples_per_cycle < 6:
        raise ModelParameterError(
            f"need >= 6 samples per cycle, got {samples_per_cycle}"
        )
    if not 0.0 <= depth_jitter <= 1.0:
        raise ModelParameterError(
            f"depth jitter must be in [0, 1], got {depth_jitter}"
        )
    if depth_jitter > 0.0 and seed is None:
        raise ModelParameterError(
            "stochastic flicker (depth_jitter > 0) needs a seed"
        )
    duration = trace.duration_s
    points = max(int(duration * flicker_hz * samples_per_cycle), 2)
    grid = np.linspace(0.0, duration, points)
    knots = np.unique(np.concatenate([grid, np.asarray(trace.times_s)]))
    base = trace.sample(knots)
    phase = 0.0
    depths = np.full(len(knots), depth)
    if seed is not None:
        rng = np.random.default_rng(seed)
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        if depth_jitter > 0.0:
            depths = depth * (
                1.0 + depth_jitter * rng.standard_normal(len(knots))
            )
            depths = np.clip(depths, 0.0, 1.0)
    ripple = 1.0 + depths * np.sin(2.0 * np.pi * flicker_hz * knots + phase)
    values = np.clip(base * ripple, 0.0, None)
    return IrradianceTrace(tuple(knots), tuple(values))


def concatenate(traces: Sequence[IrradianceTrace]) -> IrradianceTrace:
    """Join traces end-to-end, offsetting each by the preceding duration."""
    if not traces:
        raise ModelParameterError("need at least one trace to concatenate")
    times: list = []
    values: list = []
    offset = 0.0
    for trace in traces:
        for t, v in zip(trace.times_s, trace.values):
            shifted = t + offset
            if times and shifted <= times[-1]:
                shifted = times[-1] + 1e-9
            times.append(shifted)
            values.append(v)
        offset = times[-1]
    return IrradianceTrace(tuple(times), tuple(values))
