"""Light conditions the paper evaluates under.

The paper moves the solar cell between outdoor and indoor areas
(Section II-A, Fig. 2) and sweeps the regulator study across "100%, 50%
and 25% of solar output" (Section IV-B, Fig. 7(a)).  A
:class:`LightCondition` names one such environment and carries its
irradiance as a fraction of the full-sun reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class LightCondition:
    """A named lighting environment.

    ``irradiance`` is relative to the full-sun reference condition
    (1.0).  The paper's measured I-V family spans strong outdoor light
    down to indoor lighting, roughly two orders of magnitude of
    irradiance.
    """

    name: str
    irradiance: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelParameterError("light condition needs a non-empty name")
        if self.irradiance < 0.0:
            raise ModelParameterError(
                f"irradiance must be >= 0, got {self.irradiance}"
            )

    def scaled(self, factor: float) -> "LightCondition":
        """A new condition with irradiance multiplied by ``factor``."""
        if factor < 0.0:
            raise ModelParameterError(f"scale factor must be >= 0, got {factor}")
        return LightCondition(
            name=f"{self.name} x{factor:g}", irradiance=self.irradiance * factor
        )


#: Outdoor strong light -- the paper's reference condition.
FULL_SUN = LightCondition("full sun", 1.0)

#: Half of the solar output (Fig. 7(a) middle curve).
HALF_SUN = LightCondition("half sun", 0.5)

#: Quarter of the solar output -- where the paper finds regulator bypass wins.
QUARTER_SUN = LightCondition("quarter sun", 0.25)

#: Bright indoor lighting; roughly a tenth of full sun for this cell class.
INDOOR = LightCondition("indoor", 0.10)

#: The condition set used by the Fig. 2 reproduction, strongest first.
STANDARD_CONDITIONS = (FULL_SUN, HALF_SUN, QUARTER_SUN, INDOOR)
