"""Maximum power point computation.

Modern harvesters track the voltage at which the cell delivers maximum
power (the MPP); the paper's entire holistic argument is about how much
of that maximum actually reaches the processor.  This module computes
the true MPP of a :class:`~repro.pv.cell.SingleDiodeCell` by bounded
scalar optimisation (golden-section via :func:`scipy.optimize
.minimize_scalar`), refined from a coarse grid seed so the solver cannot
get stuck on the flat current-limited plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from repro.errors import ModelParameterError
from repro.pv.cell import SingleDiodeCell


@dataclass(frozen=True)
class MaximumPowerPoint:
    """The cell's maximum power point at one irradiance."""

    voltage_v: float
    current_a: float
    power_w: float
    irradiance: float

    def __post_init__(self) -> None:
        if self.power_w < 0.0:
            raise ModelParameterError(
                f"MPP power must be non-negative, got {self.power_w}"
            )


def find_mpp(
    cell: SingleDiodeCell,
    irradiance: float = 1.0,
    grid_points: int = 64,
) -> MaximumPowerPoint:
    """Locate the maximum power point at the given irradiance.

    A coarse grid over ``[0, Voc]`` brackets the optimum, then a bounded
    scalar minimisation of ``-P(V)`` polishes it.  At zero irradiance the
    MPP is degenerate (0 V, 0 W).
    """
    if grid_points < 8:
        raise ModelParameterError(f"grid_points must be >= 8, got {grid_points}")
    if irradiance == 0.0:
        return MaximumPowerPoint(0.0, 0.0, 0.0, irradiance)

    voc = cell.open_circuit_voltage(irradiance)
    grid = np.linspace(0.0, voc, grid_points)
    powers = cell.power(grid, irradiance)
    seed_index = int(np.argmax(powers))
    low = grid[max(seed_index - 1, 0)]
    high = grid[min(seed_index + 1, grid_points - 1)]
    if high <= low:
        high = low + 1e-6

    result = minimize_scalar(
        lambda v: -float(cell.power(v, irradiance)),
        bounds=(low, high),
        method="bounded",
        options={"xatol": 1e-7},
    )
    vmpp = float(result.x)
    impp = float(cell.current(vmpp, irradiance))
    return MaximumPowerPoint(
        voltage_v=vmpp,
        current_a=impp,
        power_w=vmpp * impp,
        irradiance=irradiance,
    )


def mpp_table(
    cell: SingleDiodeCell,
    irradiances: "np.ndarray | list",
) -> "list[MaximumPowerPoint]":
    """MPPs for a set of irradiances, e.g. to pre-characterise a LUT."""
    return [find_mpp(cell, float(s)) for s in np.asarray(irradiances, dtype=float)]


def fill_factor(cell: SingleDiodeCell, irradiance: float = 1.0) -> float:
    """Fill factor ``Pmpp / (Voc * Isc)`` -- a curve-quality scalar in (0, 1)."""
    if irradiance <= 0.0:
        raise ModelParameterError(
            f"fill factor needs positive irradiance, got {irradiance}"
        )
    mpp = find_mpp(cell, irradiance)
    voc = cell.open_circuit_voltage(irradiance)
    isc = cell.short_circuit_current(irradiance)
    denominator = voc * isc
    if denominator <= 0.0:
        return 0.0
    return mpp.power_w / denominator
