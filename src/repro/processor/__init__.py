"""Microprocessor energy/performance substrate.

Models the paper's test vehicle: a 65 nm pattern-recognition image
processor (Section VII, Fig. 10) that runs from roughly 0.2 V
(subthreshold) up to 1 V, processing a 64x64 frame in about 15 ms at
0.5 V.  Three coupled models reproduce the measured characteristics of
Fig. 11(a):

* :class:`~repro.processor.frequency.FrequencyModel` -- maximum clock
  versus supply voltage, smooth across the sub/near/super-threshold
  regions (EKV-style drive current over load capacitance);
* :class:`~repro.processor.power.DynamicPowerModel` -- switched
  capacitance ``Ceff * V^2 * f``;
* :class:`~repro.processor.power.LeakageModel` -- subthreshold leakage
  with DIBL, whose energy-per-cycle divergence at low voltage creates
  the minimum energy point.

:mod:`repro.processor.image` additionally implements the image pipeline
*functionally* (gradient features, windowed vectors, classification) so
workload cycle counts come from real computation rather than constants.
"""

from repro.processor.frequency import FrequencyModel
from repro.processor.power import DynamicPowerModel, LeakageModel
from repro.processor.energy import ProcessorModel, paper_processor
from repro.processor.workloads import (
    Workload,
    image_frame_workload,
    standard_workloads,
)

__all__ = [
    "FrequencyModel",
    "DynamicPowerModel",
    "LeakageModel",
    "ProcessorModel",
    "paper_processor",
    "Workload",
    "image_frame_workload",
    "standard_workloads",
]
