"""Workload descriptors.

A workload is, to the energy machinery, a number of clock cycles plus
an optional deadline -- the paper's eq. (8) ``N`` and Section VI-B
completion-time constraint ``T``.  The descriptors here name the
workloads used by the experiments; cycle counts for the image workloads
come from the functional pipeline's own accounting
(:mod:`repro.processor.image.cycles`), so they track the real
computation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class Workload:
    """A unit of computation to schedule.

    Parameters
    ----------
    name:
        Label used in reports.
    cycles:
        Total clock cycles ``N`` the task needs.
    deadline_s:
        Completion-time constraint, or ``None`` for best-effort /
        steady-state operation (the Section V MEP regime).
    activity:
        Switching-activity factor relative to the characterisation
        workload (1.0): a memory-bound filter toggles less capacitance
        per cycle than the dense MAC loops of the image pipeline.
        :meth:`ProcessorModel.with_activity
        <repro.processor.energy.ProcessorModel.with_activity>` folds it
        into the power model.
    """

    name: str
    cycles: int
    deadline_s: "float | None" = None
    activity: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelParameterError("workload needs a non-empty name")
        if self.cycles <= 0:
            raise ModelParameterError(
                f"cycle count must be positive, got {self.cycles}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ModelParameterError(
                f"deadline must be positive, got {self.deadline_s}"
            )
        if not 0.0 < self.activity <= 2.0:
            raise ModelParameterError(
                f"activity must be in (0, 2], got {self.activity}"
            )

    def with_deadline(self, deadline_s: "float | None") -> "Workload":
        """The same work with a different completion-time constraint."""
        return replace(self, deadline_s=deadline_s)

    def min_frequency_hz(self) -> "float | None":
        """Average clock needed to meet the deadline, or None."""
        if self.deadline_s is None:
            return None
        return self.cycles / self.deadline_s

    def repeated(self, count: int) -> "Workload":
        """``count`` back-to-back instances as one workload.

        The deadline, if any, scales with the repetition count.
        """
        if count < 1:
            raise ModelParameterError(f"repeat count must be >= 1, got {count}")
        return Workload(
            name=f"{self.name} x{count}",
            cycles=self.cycles * count,
            deadline_s=None if self.deadline_s is None else self.deadline_s * count,
            activity=self.activity,
        )


def _reference_frame_cycles() -> int:
    """Cycles of one 64x64 frame through the reference pipeline.

    Computed from the functional pipeline's own cycle accounting so the
    workload tracks the implementation; the paper's anchor is ~15 ms at
    0.5 V (~400 MHz), i.e. ~6M cycles.
    """
    from repro.processor.image.cycles import CycleCostModel

    return CycleCostModel().frame_cycles(frame_size=64)


#: Cycles of one 64x64 frame (see :func:`_reference_frame_cycles`).
IMAGE_FRAME_CYCLES = _reference_frame_cycles()


def image_frame_workload(deadline_s: "float | None" = 15e-3) -> Workload:
    """One 64x64 pattern-recognition frame (paper Section VII).

    Defaults to the paper's 15 ms frame time as the deadline.
    """
    return Workload("64x64 frame", IMAGE_FRAME_CYCLES, deadline_s)


def standard_workloads() -> "tuple[Workload, ...]":
    """The workload set exercised by tests and ablation benches."""
    return (
        image_frame_workload(),
        image_frame_workload(None).repeated(10).with_deadline(None),
        Workload("sensor filter", 200_000, deadline_s=2e-3, activity=0.6),
        Workload("housekeeping", 50_000, deadline_s=None, activity=0.4),
    )
