"""Dynamic and leakage power of the microprocessor.

The paper's eq. (5) splits processor energy into a dynamic term that
depends only on supply voltage and a leakage term that is "a function
of leakage power and clock speed, both of which are functions of Vdd".
These two classes are those terms:

* :class:`DynamicPowerModel` -- the classic switched-capacitance model
  ``P = a * Ceff * V^2 * f``; per-cycle dynamic energy ``a * Ceff * V^2``
  is frequency independent.
* :class:`LeakageModel` -- subthreshold leakage with drain-induced
  barrier lowering (DIBL): the leakage *current* grows exponentially
  with supply, and the leakage *energy per cycle* ``V * Ileak / f``
  diverges at low voltage where the clock collapses, creating the
  minimum energy point of Figs. 7(b)/11(a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError, OperatingRangeError


@dataclass(frozen=True)
class DynamicPowerModel:
    """Switched-capacitance dynamic power.

    Parameters
    ----------
    effective_capacitance_f:
        ``Ceff``: total capacitance switched per clock cycle at activity
        1.0 -- the paper's eq. (8) lumped parameter ``C`` "to account
        for capacitance of internal circuit".
    activity:
        Workload activity factor scaling ``Ceff`` (1.0 = the
        characterisation workload).
    """

    effective_capacitance_f: float
    activity: float = 1.0

    def __post_init__(self) -> None:
        if self.effective_capacitance_f <= 0.0:
            raise ModelParameterError(
                f"effective capacitance must be positive, got "
                f"{self.effective_capacitance_f}"
            )
        if not 0.0 < self.activity <= 2.0:
            raise ModelParameterError(
                f"activity factor must be in (0, 2], got {self.activity}"
            )

    def energy_per_cycle(
        self, voltage_v: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Dynamic energy per clock cycle [J]: ``a * Ceff * V^2``."""
        v = np.asarray(voltage_v, dtype=float)
        return self.activity * self.effective_capacitance_f * v * v

    def power(
        self, voltage_v: "float | np.ndarray", frequency_hz: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Dynamic power [W] at the given supply and clock."""
        return self.energy_per_cycle(voltage_v) * np.asarray(
            frequency_hz, dtype=float
        )


@dataclass(frozen=True)
class LeakageModel:
    """Subthreshold leakage current with DIBL supply dependence.

    ``Ileak(V) = I0 * exp(V / Vdibl)`` -- the exponential supply
    sensitivity through drain-induced barrier lowering that makes
    leakage *power* grow super-linearly with voltage while leakage
    *energy per cycle* still diverges at low voltage.

    Parameters
    ----------
    reference_current_a:
        Leakage current extrapolated to V = 0 (``I0``).
    dibl_voltage_v:
        Exponential scale of the supply dependence.
    """

    reference_current_a: float
    dibl_voltage_v: float = 0.8

    def __post_init__(self) -> None:
        if self.reference_current_a < 0.0:
            raise ModelParameterError(
                f"leakage current must be >= 0, got {self.reference_current_a}"
            )
        if self.dibl_voltage_v <= 0.0:
            raise ModelParameterError(
                f"DIBL voltage must be positive, got {self.dibl_voltage_v}"
            )

    def current(self, voltage_v: "float | np.ndarray") -> "float | np.ndarray":
        """Leakage current at the given supply [A]."""
        v = np.asarray(voltage_v, dtype=float)
        return self.reference_current_a * np.exp(v / self.dibl_voltage_v)

    def power(self, voltage_v: "float | np.ndarray") -> "float | np.ndarray":
        """Leakage power ``V * Ileak(V)`` [W]."""
        v = np.asarray(voltage_v, dtype=float)
        return v * self.current(v)

    def energy_per_cycle(
        self, voltage_v: "float | np.ndarray", frequency_hz: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Leakage energy charged to each cycle [J]: ``Pleak / f``.

        Raises when asked about a zero/negative clock -- leakage energy
        per cycle is undefined for a stopped clock (the caller should
        treat a stopped processor as pure leakage *power*).
        """
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0.0):
            raise OperatingRangeError(
                "leakage energy per cycle needs a positive clock frequency"
            )
        return self.power(voltage_v) / f
