"""Pattern classifier (the chip's "Classifier" block).

A nearest-centroid classifier over frame descriptors: tiny state (one
centroid per class), one dot-product sweep per classification -- the
kind of classifier that fits a 4 mm^2 65 nm die next to its feature
pipeline.  Training is a single averaging pass over labelled
descriptors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelParameterError


class NearestCentroidClassifier:
    """Nearest-centroid classification of feature descriptors."""

    def __init__(self) -> None:
        self._centroids: "dict[str, np.ndarray]" = {}

    @property
    def classes(self) -> "tuple[str, ...]":
        """Labels the classifier has been trained on, sorted."""
        return tuple(sorted(self._centroids))

    @property
    def is_trained(self) -> bool:
        """True once at least one class centroid exists."""
        return bool(self._centroids)

    def fit(self, descriptors: "list[np.ndarray]", labels: "list[str]") -> None:
        """Compute one centroid per label from the training descriptors."""
        if len(descriptors) != len(labels):
            raise ModelParameterError(
                f"{len(descriptors)} descriptors but {len(labels)} labels"
            )
        if not descriptors:
            raise ModelParameterError("training set must not be empty")
        lengths = {len(np.asarray(d).ravel()) for d in descriptors}
        if len(lengths) != 1:
            raise ModelParameterError(
                f"descriptors have inconsistent lengths: {sorted(lengths)}"
            )
        grouped: "dict[str, list[np.ndarray]]" = {}
        for descriptor, label in zip(descriptors, labels):
            grouped.setdefault(label, []).append(
                np.asarray(descriptor, dtype=float).ravel()
            )
        self._centroids = {
            label: np.mean(group, axis=0)
            for label, group in sorted(grouped.items())
        }

    def scores(self, descriptor: np.ndarray) -> "dict[str, float]":
        """Negative squared distance to each centroid (higher = closer)."""
        if not self._centroids:
            raise ModelParameterError("classifier has not been trained")
        d = np.asarray(descriptor, dtype=float).ravel()
        result = {}
        for label, centroid in sorted(self._centroids.items()):
            if centroid.shape != d.shape:
                raise ModelParameterError(
                    f"descriptor length {d.shape[0]} does not match "
                    f"training length {centroid.shape[0]}"
                )
            diff = d - centroid
            result[label] = -float(diff @ diff)
        return result

    def predict(self, descriptor: np.ndarray) -> str:
        """The label whose centroid is nearest to the descriptor."""
        scores = self.scores(descriptor)
        return max(scores, key=scores.get)
