"""Recognition-quality evaluation utilities.

The energy side of the library measures joules and hertz; these helpers
measure whether the test vehicle still *recognises* anything -- the
application-level regression check for the examples and tests, and the
tool for studying accuracy-versus-noise tradeoffs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ModelParameterError
from repro.processor.image.frames import FrameGenerator
from repro.processor.image.pipeline import ImageProcessor


@dataclass(frozen=True)
class AccuracyReport:
    """Outcome of one evaluation sweep."""

    total: int
    correct: int
    #: confusion[truth][predicted] = count
    confusion: "dict[str, dict[str, int]]"

    @property
    def accuracy(self) -> float:
        """Fraction of frames classified correctly."""
        if self.total == 0:
            return 0.0
        return self.correct / self.total

    def per_class_accuracy(self) -> "dict[str, float]":
        """Recall per true class."""
        result = {}
        for truth, row in sorted(self.confusion.items()):
            seen = sum(sorted(row.values()))
            result[truth] = row.get(truth, 0) / seen if seen else 0.0
        return result

    def most_confused_pair(self) -> "tuple[str, str, int] | None":
        """(truth, predicted, count) of the worst off-diagonal cell."""
        worst = None
        for truth, row in sorted(self.confusion.items()):
            for predicted, count in sorted(row.items()):
                if predicted == truth or count == 0:
                    continue
                if worst is None or count > worst[2]:
                    worst = (truth, predicted, count)
        return worst


def evaluate_accuracy(
    processor: ImageProcessor,
    frames: int = 50,
    seed: int = 1000,
    noise: float = 0.05,
    size: int = 64,
) -> AccuracyReport:
    """Classify ``frames`` held-out synthetic frames and tally results.

    The generator seed is offset from the training seeds used by
    :meth:`ImageProcessor.train_on_patterns`, so frames are unseen.
    """
    if frames < 1:
        raise ModelParameterError(f"need at least 1 frame, got {frames}")
    if not processor.classifier.is_trained:
        raise ModelParameterError("processor must be trained first")
    generator = FrameGenerator(seed=seed, size=size, noise=noise)
    confusion: "dict[str, dict[str, int]]" = {}
    correct = 0
    for index in range(frames):
        frame, truth = generator.frame(index)
        predicted = processor.recognise(frame).label
        confusion.setdefault(truth, {})
        confusion[truth][predicted] = confusion[truth].get(predicted, 0) + 1
        if predicted == truth:
            correct += 1
    return AccuracyReport(total=frames, correct=correct, confusion=confusion)


def accuracy_versus_noise(
    processor: ImageProcessor,
    noise_levels: "Sequence[float]",
    frames: int = 30,
    seed: int = 2000,
) -> "list[tuple[float, float]]":
    """(noise, accuracy) pairs -- the robustness curve of the pipeline."""
    curve = []
    for noise in noise_levels:
        report = evaluate_accuracy(
            processor, frames=frames, seed=seed, noise=float(noise)
        )
        curve.append((float(noise), report.accuracy))
    return curve
