"""Gradient feature extraction (the chip's "Feature Extraction" block).

The chip computes gradient feature vectors from the scanned-in frame.
We implement the standard discrete formulation: 3x3 Sobel operators for
the horizontal and vertical derivative, from which per-pixel gradient
magnitude and orientation follow.  Implemented directly with numpy
(no scipy.ndimage) so the per-pixel operation count used for cycle
accounting is explicit in the code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError

#: Sobel kernels (derivative along x = columns, y = rows).
SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float)
SOBEL_Y = np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=float)


@dataclass(frozen=True)
class GradientField:
    """Per-pixel gradients of one frame."""

    gx: np.ndarray
    gy: np.ndarray

    @property
    def magnitude(self) -> np.ndarray:
        """Euclidean gradient magnitude per pixel."""
        return np.hypot(self.gx, self.gy)

    @property
    def orientation(self) -> np.ndarray:
        """Gradient orientation per pixel in [0, pi) (unsigned)."""
        return np.mod(np.arctan2(self.gy, self.gx), np.pi)


def _convolve3x3(frame: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Valid-region 3x3 convolution, zero-padded back to frame size.

    Written as an explicit sum of shifted views: nine shifted copies of
    the frame weighted by kernel taps -- mirroring the nine
    multiply-accumulate operations per pixel the cycle model charges.
    """
    h, w = frame.shape
    out = np.zeros((h, w))
    acc = np.zeros((h - 2, w - 2))
    for dy in range(3):
        for dx in range(3):
            weight = kernel[dy, dx]
            if weight == 0.0:
                continue
            acc += weight * frame[dy : dy + h - 2, dx : dx + w - 2]
    out[1 : h - 1, 1 : w - 1] = acc
    return out


def sobel_gradients(frame: np.ndarray) -> GradientField:
    """Compute the Sobel gradient field of a grayscale frame.

    The frame must be 2-D and at least 3x3; borders are zero (no
    gradient defined there), matching a hardware pipeline that skips
    edge pixels.
    """
    pixels = np.asarray(frame, dtype=float)
    if pixels.ndim != 2:
        raise ModelParameterError(
            f"frame must be 2-D, got shape {pixels.shape}"
        )
    if min(pixels.shape) < 3:
        raise ModelParameterError(
            f"frame must be at least 3x3, got shape {pixels.shape}"
        )
    return GradientField(
        gx=_convolve3x3(pixels, SOBEL_X),
        gy=_convolve3x3(pixels, SOBEL_Y),
    )
