"""End-to-end image processor: the chip of Fig. 10 in software.

Chains the functional blocks -- scan-in, Sobel gradients, windowed
vector formation, classification and an optional sliding-window
detection sweep -- and accounts the clock cycles each frame costs via
:class:`~repro.processor.image.cycles.CycleCostModel`.  The result is a
workload whose cycle count comes from the real computation performed,
which the energy machinery then schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.processor.image.classifier import NearestCentroidClassifier
from repro.processor.image.cycles import CycleCostModel
from repro.processor.image.features import sobel_gradients
from repro.processor.image.frames import FrameGenerator, PATTERN_CLASSES
from repro.processor.image.vectors import frame_descriptor, window_feature_vectors
from repro.processor.workloads import Workload


@dataclass(frozen=True)
class RecognitionResult:
    """Outcome of processing one frame."""

    label: str
    scores: "dict[str, float]"
    cycles: int

    @property
    def margin(self) -> float:
        """Score gap between the best and second-best class (>= 0)."""
        ranked = sorted(self.scores.values(), reverse=True)
        if len(ranked) < 2:
            return float("inf")
        return ranked[0] - ranked[1]


class ImageProcessor:
    """The pattern-recognition pipeline with cycle accounting.

    Parameters
    ----------
    window / bins:
        Vector-formation tiling and histogram resolution.
    detect_window / detect_stride:
        Sliding-window detection sweep geometry (charged in cycles; the
        sweep refines localisation on the chip and dominates its
        runtime).
    cost_model:
        Per-operation cycle costs.
    """

    def __init__(
        self,
        window: int = 8,
        bins: int = 8,
        detect_window: int = 16,
        detect_stride: int = 4,
        cost_model: "CycleCostModel | None" = None,
    ) -> None:
        self.window = window
        self.bins = bins
        self.detect_window = detect_window
        self.detect_stride = detect_stride
        self.cost_model = cost_model or CycleCostModel()
        self.classifier = NearestCentroidClassifier()

    # -- training -----------------------------------------------------------

    def descriptor(self, frame: np.ndarray) -> np.ndarray:
        """Frame pixels -> normalised feature descriptor."""
        field = sobel_gradients(frame)
        vectors = window_feature_vectors(field, self.window, self.bins)
        return frame_descriptor(vectors)

    def train(self, frames: "list[np.ndarray]", labels: "list[str]") -> None:
        """Fit the classifier on labelled frames."""
        descriptors = [self.descriptor(f) for f in frames]
        self.classifier.fit(descriptors, labels)

    def train_on_patterns(
        self, samples_per_class: int = 4, seed: int = 7, size: int = 64
    ) -> None:
        """Train on the synthetic pattern library (convenience)."""
        if samples_per_class < 1:
            raise ModelParameterError(
                f"need >= 1 sample per class, got {samples_per_class}"
            )
        generator = FrameGenerator(seed=seed, size=size)
        frames, labels = [], []
        for i in range(samples_per_class * len(PATTERN_CLASSES)):
            frame, label = generator.frame(i)
            frames.append(frame)
            labels.append(label)
        self.train(frames, labels)

    # -- inference -----------------------------------------------------------

    def frame_cycles(self, frame_size: int) -> int:
        """Cycles one frame of the given edge length costs."""
        classes = max(len(self.classifier.classes), 1)
        return self.cost_model.frame_cycles(
            frame_size=frame_size,
            window=self.window,
            bins=self.bins,
            detect_window=self.detect_window,
            detect_stride=self.detect_stride,
            classes=classes,
        )

    def recognise(self, frame: np.ndarray) -> RecognitionResult:
        """Classify one frame and account its cycle cost."""
        pixels = np.asarray(frame, dtype=float)
        if pixels.ndim != 2 or pixels.shape[0] != pixels.shape[1]:
            raise ModelParameterError(
                f"expected a square 2-D frame, got shape {pixels.shape}"
            )
        descriptor = self.descriptor(pixels)
        scores = self.classifier.scores(descriptor)
        label = max(scores, key=scores.get)
        return RecognitionResult(
            label=label,
            scores=scores,
            cycles=self.frame_cycles(pixels.shape[0]),
        )

    def detect(self, frame: np.ndarray, target: str) -> "tuple[int, int, float]":
        """Sliding-window sweep: best (row, col, score) for ``target``.

        Scores each detection window by similarity of its orientation
        histogram to the target class centroid's average orientation
        profile.  This is the functional counterpart of the cycle
        model's dominating ``detection_sweep`` term.
        """
        if target not in self.classifier.classes:
            raise ModelParameterError(
                f"unknown target {target!r}; trained classes: "
                f"{self.classifier.classes}"
            )
        pixels = np.asarray(frame, dtype=float)
        field = sobel_gradients(pixels)
        magnitude = field.magnitude
        bin_index = np.minimum(
            (field.orientation / np.pi * self.bins).astype(int), self.bins - 1
        )
        # Target profile: the centroid's bin energies aggregated over windows.
        centroid = self.classifier._centroids[target]
        profile = centroid.reshape(-1, self.bins).sum(axis=0)
        norm = np.linalg.norm(profile)
        if norm > 0.0:
            profile = profile / norm

        best = (0, 0, -np.inf)
        size = pixels.shape[0]
        for row in range(0, size - self.detect_window + 1, self.detect_stride):
            for col in range(0, size - self.detect_window + 1, self.detect_stride):
                tile_mag = magnitude[
                    row : row + self.detect_window, col : col + self.detect_window
                ]
                tile_bin = bin_index[
                    row : row + self.detect_window, col : col + self.detect_window
                ]
                hist = np.bincount(
                    tile_bin.ravel(), weights=tile_mag.ravel(), minlength=self.bins
                )
                hist_norm = np.linalg.norm(hist)
                if hist_norm == 0.0:
                    continue
                score = float(hist @ profile / hist_norm)
                if score > best[2]:
                    best = (row, col, score)
        return best

    def workload(self, frame_size: int = 64, deadline_s: "float | None" = 15e-3) -> Workload:
        """The frame as a schedulable :class:`Workload`."""
        return Workload(
            name=f"{frame_size}x{frame_size} frame",
            cycles=self.frame_cycles(frame_size),
            deadline_s=deadline_s,
        )
