"""Functional model of the paper's pattern-recognition image processor.

The test chip (Section VII, Fig. 10) "performs feature extraction and
classification by using gradient feature vectors in a windowed frame":
pixels are scanned into on-chip memory, gradient features are extracted,
formed into window vectors, and classified.  A 64x64 frame takes about
15 ms at 0.5 V.

This package implements that pipeline *functionally* -- Sobel gradients,
windowed gradient-orientation histograms, nearest-centroid
classification -- together with a cycle-accounting model, so that the
energy experiments run on cycle counts produced by real computation and
the examples have an actual application to show.
"""

from repro.processor.image.frames import FrameGenerator, synthetic_frame
from repro.processor.image.features import GradientField, sobel_gradients
from repro.processor.image.vectors import window_feature_vectors
from repro.processor.image.classifier import NearestCentroidClassifier
from repro.processor.image.pipeline import ImageProcessor, RecognitionResult

__all__ = [
    "FrameGenerator",
    "synthetic_frame",
    "GradientField",
    "sobel_gradients",
    "window_feature_vectors",
    "NearestCentroidClassifier",
    "ImageProcessor",
    "RecognitionResult",
]
