"""Cycle-count accounting for the image pipeline.

The energy experiments need the workload expressed in clock cycles (the
paper's eq. (8) ``N``).  Rather than invent a constant, this model
charges every stage of the functional pipeline with per-operation costs
representative of the paper's small in-order core (no hardware FPU;
multiply, divide, square-root and arctangent are multi-cycle library
routines), plus a fetch/load-store overhead factor.

Calibration anchor: the paper reports ~15 ms for a 64x64 frame at
0.5 V.  With the frequency model's 400 MHz at 0.5 V this means ~6M
cycles per frame; the default cost table lands within a few percent of
that, and the workload definitions consume the computed value, so
changing the pipeline parameters consistently changes every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class CycleCostModel:
    """Per-operation cycle costs of the recognition core.

    Parameters
    ----------
    mac_cycles:
        Multiply-accumulate (software multiply on the small core).
    add_cycles:
        Addition / compare / shift.
    div_cycles, sqrt_cycles, atan2_cycles:
        Iterative library routines (division, CORDIC square root and
        arctangent).
    mem_cycles:
        One memory access (scan-in store or table load).
    overhead_factor:
        Multiplier for instruction fetch, branches and address
        arithmetic surrounding each charged operation.
    """

    mac_cycles: int = 18
    add_cycles: int = 2
    div_cycles: int = 40
    sqrt_cycles: int = 60
    atan2_cycles: int = 70
    mem_cycles: int = 2
    overhead_factor: float = 2.0

    def __post_init__(self) -> None:
        for field_name in (
            "mac_cycles",
            "add_cycles",
            "div_cycles",
            "sqrt_cycles",
            "atan2_cycles",
            "mem_cycles",
        ):
            if getattr(self, field_name) < 1:
                raise ModelParameterError(f"{field_name} must be >= 1")
        if self.overhead_factor < 1.0:
            raise ModelParameterError(
                f"overhead factor must be >= 1, got {self.overhead_factor}"
            )

    # -- stage costs -------------------------------------------------------

    def scan_in(self, pixels: int) -> int:
        """Store every scanned pixel into on-chip memory."""
        return pixels * self.mem_cycles

    def sobel(self, pixels: int) -> int:
        """Two 3x3 kernels, nine taps each, per pixel."""
        return pixels * 18 * self.mac_cycles

    def magnitude_orientation(self, pixels: int) -> int:
        """CORDIC hypot + atan2 per pixel."""
        return pixels * (self.sqrt_cycles + self.atan2_cycles)

    def binning(self, pixels: int) -> int:
        """Orientation-to-bin quantisation and histogram accumulate."""
        return pixels * (self.div_cycles // 8 + 2 * self.add_cycles)

    def window_normalisation(self, windows: int, bins: int) -> int:
        """L2 norm per window: squares, one sqrt, one divide per bin."""
        per_window = bins * self.mac_cycles + self.sqrt_cycles + bins * self.div_cycles
        return windows * per_window

    def classification(self, descriptor_dims: int, classes: int) -> int:
        """Distance to every class centroid over the full descriptor."""
        return descriptor_dims * classes * self.mac_cycles

    def detection_sweep(
        self, positions: int, window_pixels: int, bins: int, classes: int
    ) -> int:
        """Sliding-window detection: per-position histogram + match."""
        per_position = (
            window_pixels * self.mac_cycles
            + bins * self.mac_cycles
            + self.sqrt_cycles
            + bins * classes * self.mac_cycles
        )
        return positions * per_position

    # -- whole-frame totals -------------------------------------------------

    def frame_cycles(
        self,
        frame_size: int = 64,
        window: int = 8,
        bins: int = 8,
        detect_window: int = 16,
        detect_stride: int = 4,
        classes: int = 5,
    ) -> int:
        """Total cycles for one frame through the full pipeline."""
        if frame_size < detect_window:
            raise ModelParameterError(
                f"frame {frame_size} smaller than detection window {detect_window}"
            )
        if frame_size % window:
            raise ModelParameterError(
                f"frame {frame_size} not divisible into {window}-pixel windows"
            )
        if detect_stride < 1:
            raise ModelParameterError(
                f"detection stride must be >= 1, got {detect_stride}"
            )
        pixels = frame_size * frame_size
        windows = (frame_size // window) ** 2
        descriptor_dims = windows * bins
        positions_per_axis = (frame_size - detect_window) // detect_stride + 1
        positions = positions_per_axis * positions_per_axis

        raw = (
            self.scan_in(pixels)
            + self.sobel(pixels)
            + self.magnitude_orientation(pixels)
            + self.binning(pixels)
            + self.window_normalisation(windows, bins)
            + self.classification(descriptor_dims, classes)
            + self.detection_sweep(
                positions, detect_window * detect_window, bins, classes
            )
        )
        return int(round(raw * self.overhead_factor))
