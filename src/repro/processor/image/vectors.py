"""Windowed gradient-vector formation (the chip's "Vector Formation").

The chip tiles the frame into windows and aggregates each window's
gradients into a feature vector.  We use the standard formulation: a
histogram of gradient orientations, magnitude-weighted, per window --
the core of HOG-style pattern recognition -- followed by L2
normalisation per window so lighting level cancels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelParameterError
from repro.processor.image.features import GradientField

#: Default tiling and histogram shape (8x8-pixel windows, 8 bins).
DEFAULT_WINDOW = 8
DEFAULT_BINS = 8


def window_feature_vectors(
    field: GradientField,
    window: int = DEFAULT_WINDOW,
    bins: int = DEFAULT_BINS,
) -> np.ndarray:
    """Aggregate a gradient field into per-window orientation histograms.

    Returns an array of shape ``(n_windows, bins)`` where windows are
    raster-ordered non-overlapping ``window x window`` tiles.  Each
    histogram is magnitude-weighted and L2-normalised (zero windows stay
    zero).  The frame dimensions must be divisible by ``window``.
    """
    if window < 2:
        raise ModelParameterError(f"window must be >= 2, got {window}")
    if bins < 2:
        raise ModelParameterError(f"bins must be >= 2, got {bins}")
    magnitude = field.magnitude
    orientation = field.orientation
    h, w = magnitude.shape
    if h % window or w % window:
        raise ModelParameterError(
            f"frame {h}x{w} not divisible into {window}x{window} windows"
        )

    bin_index = np.minimum((orientation / np.pi * bins).astype(int), bins - 1)
    rows = h // window
    cols = w // window
    vectors = np.zeros((rows * cols, bins))
    for r in range(rows):
        for c in range(cols):
            tile_mag = magnitude[
                r * window : (r + 1) * window, c * window : (c + 1) * window
            ]
            tile_bin = bin_index[
                r * window : (r + 1) * window, c * window : (c + 1) * window
            ]
            hist = np.bincount(
                tile_bin.ravel(), weights=tile_mag.ravel(), minlength=bins
            )
            vectors[r * cols + c] = hist
    # Windows with no real gradient energy stay zero; the threshold
    # guards against floating-point dust being normalised into a
    # spurious unit vector.
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    significant = norms > 1e-9
    np.divide(vectors, norms, out=vectors, where=significant)
    vectors[~significant.ravel()] = 0.0
    return vectors


def frame_descriptor(vectors: np.ndarray) -> np.ndarray:
    """Flatten per-window vectors into one frame descriptor, re-normalised."""
    flat = np.asarray(vectors, dtype=float).ravel()
    norm = np.linalg.norm(flat)
    if norm == 0.0:
        return flat
    return flat / norm
