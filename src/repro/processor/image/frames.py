"""Synthetic 64x64 test frames.

The paper scans externally-captured image pixels into on-chip memory.
We have no camera, so this module synthesises deterministic frames with
recognisable structure -- oriented bars, crosses, blobs and checker
patterns -- that the gradient-feature classifier can actually tell
apart.  Every generator is seeded, so experiments replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError

#: The paper's frame edge length ("low resolution image with 64x64 pixels").
DEFAULT_FRAME_SIZE = 64

#: Pattern classes the synthetic generator can draw.
PATTERN_CLASSES = ("horizontal-bars", "vertical-bars", "cross", "blob", "checker")


def synthetic_frame(
    pattern: str,
    seed: int = 0,
    size: int = DEFAULT_FRAME_SIZE,
    noise: float = 0.05,
) -> np.ndarray:
    """Draw one ``size x size`` grayscale frame of the given pattern class.

    Pixel values are floats in [0, 1].  ``noise`` adds seeded Gaussian
    pixel noise, clipped back to range.
    """
    if pattern not in PATTERN_CLASSES:
        raise ModelParameterError(
            f"unknown pattern {pattern!r}; choose from {PATTERN_CLASSES}"
        )
    if size < 8:
        raise ModelParameterError(f"frame size must be >= 8, got {size}")
    if noise < 0.0:
        raise ModelParameterError(f"noise must be >= 0, got {noise}")

    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    period = max(4, size // 8)

    if pattern == "horizontal-bars":
        frame = ((ys // period) % 2).astype(float)
    elif pattern == "vertical-bars":
        frame = ((xs // period) % 2).astype(float)
    elif pattern == "cross":
        half = size // 2
        width = max(2, size // 10)
        frame = np.zeros((size, size))
        frame[half - width : half + width, :] = 1.0
        frame[:, half - width : half + width] = 1.0
    elif pattern == "blob":
        cy = size / 2 + rng.uniform(-size / 8, size / 8)
        cx = size / 2 + rng.uniform(-size / 8, size / 8)
        sigma = size / 6
        frame = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma * sigma)))
    else:  # checker
        frame = (((ys // period) + (xs // period)) % 2).astype(float)

    if noise > 0.0:
        frame = frame + rng.normal(0.0, noise, frame.shape)
    return np.clip(frame, 0.0, 1.0)


@dataclass(frozen=True)
class FrameGenerator:
    """A deterministic stream of labelled synthetic frames.

    Useful for examples and tests that need many frames: frame ``i`` of
    a generator is always identical for the same construction arguments.
    """

    seed: int = 0
    size: int = DEFAULT_FRAME_SIZE
    noise: float = 0.05

    def frame(self, index: int) -> "tuple[np.ndarray, str]":
        """Return ``(pixels, true_label)`` for stream position ``index``."""
        if index < 0:
            raise ModelParameterError(f"frame index must be >= 0, got {index}")
        label = PATTERN_CLASSES[index % len(PATTERN_CLASSES)]
        pixels = synthetic_frame(
            label, seed=self.seed * 100_003 + index, size=self.size, noise=self.noise
        )
        return pixels, label

    def batch(self, count: int) -> "list[tuple[np.ndarray, str]]":
        """The first ``count`` frames of the stream."""
        if count < 1:
            raise ModelParameterError(f"batch count must be >= 1, got {count}")
        return [self.frame(i) for i in range(count)]
