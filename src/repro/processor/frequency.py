"""Maximum clock frequency versus supply voltage.

The critical-path delay of a digital block is the time its drive
current needs to swing the path capacitance across the supply:
``f = Ion(V) / (Cpath * V)``.  We model the drive current with an
EKV-style smooth interpolation,

    Ion(V) proportional to ln(1 + exp((V - Vth) / (2 m vt)))^alpha,

which reduces to exponential subthreshold conduction below ``Vth`` and
to an alpha-power law above it -- one expression valid across the whole
0.2-1.0 V range of the paper's Fig. 11(a) without a stitched piecewise
model.  ``alpha`` < 2 captures 65 nm velocity saturation.

Frequency also appears *inverted* in the scheduling equations: the
paper's eq. (9)-(10) approximate ``f(V)`` as linear near the operating
point, so :meth:`FrequencyModel.linearize` provides exactly that local
model for the sprint analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError, OperatingRangeError
from repro.units import thermal_voltage


@dataclass(frozen=True)
class LinearFrequencyFit:
    """Local linear model ``f(V) ~ slope * V + intercept`` (paper eq. 9).

    ``slope`` is the paper's ``k1`` [Hz/V], ``intercept`` its ``k0`` [Hz].
    Valid near the fit window only.
    """

    slope_hz_per_v: float
    intercept_hz: float
    fit_low_v: float
    fit_high_v: float

    def frequency(self, voltage_v: float) -> float:
        """Evaluate the linear model (clamped at zero)."""
        return max(0.0, self.slope_hz_per_v * voltage_v + self.intercept_hz)

    def voltage_for_frequency(self, frequency_hz: float) -> float:
        """Invert the linear model: the supply needed for ``frequency_hz``."""
        if self.slope_hz_per_v <= 0.0:
            raise ModelParameterError("cannot invert a non-increasing linear fit")
        return (frequency_hz - self.intercept_hz) / self.slope_hz_per_v


@dataclass(frozen=True)
class FrequencyModel:
    """Smooth sub-to-super-threshold maximum-frequency model.

    Parameters
    ----------
    drive_scale_hz:
        Overall scale factor ``K`` [Hz]: frequency is
        ``K * g(V)^alpha / V`` with ``g`` the EKV interpolation in
        units of the subthreshold slope.
    threshold_v:
        Effective device threshold voltage ``Vth``.
    alpha:
        Velocity-saturation exponent (2 = long channel, ~1.3-1.6 for
        65 nm short channel).
    subthreshold_slope_factor:
        Non-ideality ``m`` of the subthreshold slope (>= 1).
    min_voltage_v:
        Lowest supply at which logic is functional (retention limit).
    """

    drive_scale_hz: float
    threshold_v: float = 0.25
    alpha: float = 1.5
    subthreshold_slope_factor: float = 1.35
    min_voltage_v: float = 0.05
    temperature_k: float = 300.15

    def __post_init__(self) -> None:
        if self.drive_scale_hz <= 0.0:
            raise ModelParameterError(
                f"drive scale must be positive, got {self.drive_scale_hz}"
            )
        if self.threshold_v <= 0.0:
            raise ModelParameterError(
                f"threshold voltage must be positive, got {self.threshold_v}"
            )
        if self.alpha <= 0.0:
            raise ModelParameterError(f"alpha must be positive, got {self.alpha}")
        if self.subthreshold_slope_factor < 1.0:
            raise ModelParameterError(
                f"slope factor must be >= 1, got {self.subthreshold_slope_factor}"
            )

    @property
    def _ekv_scale_v(self) -> float:
        """The ``2 m vt`` denominator of the EKV interpolation [V]."""
        return 2.0 * self.subthreshold_slope_factor * thermal_voltage(
            self.temperature_k
        )

    def max_frequency(
        self, voltage_v: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Maximum stable clock at the given supply [Hz].

        Vectorised over numpy arrays.  Raises for voltages below the
        functional minimum.
        """
        arr = np.atleast_1d(np.asarray(voltage_v, dtype=float))
        if np.any(arr < self.min_voltage_v):
            raise OperatingRangeError(
                f"supply below functional minimum {self.min_voltage_v} V"
            )
        normalized = (arr - self.threshold_v) / self._ekv_scale_v
        drive = np.log1p(np.exp(np.clip(normalized, -60.0, 60.0))) ** self.alpha
        freq = self.drive_scale_hz * drive / arr
        if np.isscalar(voltage_v) or getattr(voltage_v, "ndim", 1) == 0:
            return float(freq[0])
        return freq

    def voltage_for_frequency(
        self, frequency_hz: float, v_max: float = 1.4
    ) -> float:
        """Lowest supply that reaches ``frequency_hz`` (bisection).

        Raises :class:`OperatingRangeError` when even ``v_max`` is too
        slow.
        """
        if frequency_hz <= 0.0:
            raise OperatingRangeError(
                f"target frequency must be positive, got {frequency_hz}"
            )
        if self.max_frequency(v_max) < frequency_hz:
            raise OperatingRangeError(
                f"{frequency_hz / 1e6:.1f} MHz unreachable below {v_max} V"
            )
        low, high = self.min_voltage_v, v_max
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.max_frequency(mid) < frequency_hz:
                low = mid
            else:
                high = mid
            if high - low < 1e-9:
                break
        return high

    def linearize(self, low_v: float, high_v: float) -> LinearFrequencyFit:
        """Least-squares linear fit of ``f(V)`` over ``[low_v, high_v]``.

        This is the paper's eq. (9) approximation "frequency is close to
        a linear function of Vdd" used by the sprint energy analysis.
        """
        if not self.min_voltage_v <= low_v < high_v:
            raise ModelParameterError(
                f"invalid linearization window [{low_v}, {high_v}]"
            )
        voltages = np.linspace(low_v, high_v, 32)
        freqs = self.max_frequency(voltages)
        slope, intercept = np.polyfit(voltages, freqs, 1)
        return LinearFrequencyFit(
            slope_hz_per_v=float(slope),
            intercept_hz=float(intercept),
            fit_low_v=low_v,
            fit_high_v=high_v,
        )
