"""Combined processor model and the conventional minimum energy point.

:class:`ProcessorModel` bundles the frequency, dynamic-power and
leakage models into the single object the optimizers and simulator
consume.  It answers the questions the paper's equations pose:

* eq. (3)-(4): maximum clock and total power at a supply voltage;
* eq. (5) without the regulator term: energy per cycle and the
  *conventional* MEP (the baseline the holistic MEP of
  :mod:`repro.core.mep` is compared against);
* the inverse problem the DVFS loop needs: given a power budget at the
  supply pins, the fastest sustainable clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from repro.errors import ModelParameterError, OperatingRangeError
from repro.processor.frequency import FrequencyModel
from repro.processor.power import DynamicPowerModel, LeakageModel
from repro.units import mega_hertz, milli_amps, pico_farads


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-cycle energy at one operating point, split by mechanism."""

    voltage_v: float
    frequency_hz: float
    dynamic_j: float
    leakage_j: float

    @property
    def total_j(self) -> float:
        """Total energy charged to one clock cycle [J]."""
        return self.dynamic_j + self.leakage_j


@dataclass(frozen=True)
class MinimumEnergyPoint:
    """A located minimum energy point (voltage and energy per cycle)."""

    voltage_v: float
    energy_per_cycle_j: float
    frequency_hz: float


@dataclass(frozen=True)
class ProcessorModel:
    """A DVFS-capable microprocessor for energy analysis.

    Parameters
    ----------
    frequency:
        Supply-to-clock model.
    dynamic:
        Switched-capacitance dynamic power model.
    leakage:
        Subthreshold/DIBL leakage model.
    min_operating_v / max_operating_v:
        The logic's functional supply window (the paper's chip runs
        0.2-1.0 V; it browns out below ~0.5 V when regulated at speed,
        which the simulator enforces separately).
    """

    frequency: FrequencyModel
    dynamic: DynamicPowerModel
    leakage: LeakageModel
    min_operating_v: float = 0.15
    max_operating_v: float = 1.1
    name: str = "image-processor"

    def __post_init__(self) -> None:
        if not 0.0 < self.min_operating_v < self.max_operating_v:
            raise ModelParameterError(
                f"invalid operating window [{self.min_operating_v}, "
                f"{self.max_operating_v}]"
            )

    def with_activity(self, activity: float) -> "ProcessorModel":
        """This processor under a workload of the given activity factor.

        Frequency capability and leakage are workload-independent; only
        the switched capacitance scales.  Use with
        :attr:`Workload.activity <repro.processor.workloads.Workload>`
        to plan heterogeneous workloads:
        ``processor.with_activity(workload.activity)``.
        """
        from dataclasses import replace as dataclass_replace

        if activity == self.dynamic.activity:
            return self
        return dataclass_replace(
            self,
            dynamic=DynamicPowerModel(
                effective_capacitance_f=self.dynamic.effective_capacitance_f,
                activity=activity,
            ),
        )

    # -- forward characteristics ------------------------------------------------

    def check_voltage(self, voltage_v: float) -> None:
        """Raise when the supply is outside the functional window."""
        if not self.min_operating_v <= voltage_v <= self.max_operating_v:
            raise OperatingRangeError(
                f"{self.name}: supply {voltage_v:.3f} V outside "
                f"[{self.min_operating_v:.3f}, {self.max_operating_v:.3f}] V"
            )

    def max_frequency(
        self, voltage_v: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Maximum clock at the given supply [Hz]."""
        arr = np.atleast_1d(np.asarray(voltage_v, dtype=float))
        if np.any(arr < self.min_operating_v) or np.any(arr > self.max_operating_v):
            raise OperatingRangeError(
                f"{self.name}: supply outside functional window"
            )
        return self.frequency.max_frequency(voltage_v)

    def power(
        self, voltage_v: "float | np.ndarray", frequency_hz: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Total power ``Pdyn + Pleak`` at a supply/clock pair [W]."""
        return self.dynamic.power(voltage_v, frequency_hz) + self.leakage.power(
            voltage_v
        )

    def max_power(self, voltage_v: "float | np.ndarray") -> "float | np.ndarray":
        """Total power when clocked at the maximum frequency [W].

        This is the processor's power-voltage curve of Fig. 6(a).
        """
        return self.power(voltage_v, self.max_frequency(voltage_v))

    def energy_breakdown(
        self, voltage_v: float, frequency_hz: "float | None" = None
    ) -> EnergyBreakdown:
        """Per-cycle dynamic/leakage energy split (Fig. 11(a) curves)."""
        self.check_voltage(voltage_v)
        if frequency_hz is None:
            frequency_hz = float(self.max_frequency(voltage_v))
        if frequency_hz <= 0.0:
            raise OperatingRangeError("energy per cycle needs a running clock")
        return EnergyBreakdown(
            voltage_v=voltage_v,
            frequency_hz=frequency_hz,
            dynamic_j=float(self.dynamic.energy_per_cycle(voltage_v)),
            leakage_j=float(
                self.leakage.energy_per_cycle(voltage_v, frequency_hz)
            ),
        )

    def energy_per_cycle(
        self,
        voltage_v: "float | np.ndarray",
        frequency_hz: "float | np.ndarray | None" = None,
    ) -> "float | np.ndarray":
        """Total energy per cycle [J], at max frequency unless given."""
        if frequency_hz is None:
            frequency_hz = self.max_frequency(voltage_v)
        return self.dynamic.energy_per_cycle(
            voltage_v
        ) + self.leakage.energy_per_cycle(voltage_v, frequency_hz)

    # -- inverse problems -------------------------------------------------------

    def frequency_for_power(self, voltage_v: float, power_budget_w: float) -> float:
        """Fastest clock sustainable inside ``power_budget_w`` at ``voltage_v``.

        Solves ``Pdyn(V, f) + Pleak(V) = budget`` for ``f``, clamped to
        the maximum frequency.  Returns 0 when leakage alone exceeds the
        budget (the processor cannot even idle at this voltage).
        """
        self.check_voltage(voltage_v)
        if power_budget_w < 0.0:
            raise OperatingRangeError(
                f"power budget must be >= 0, got {power_budget_w}"
            )
        leak = float(self.leakage.power(voltage_v))
        headroom = power_budget_w - leak
        if headroom <= 0.0:
            return 0.0
        f_budget = headroom / float(self.dynamic.energy_per_cycle(voltage_v))
        return min(f_budget, float(self.max_frequency(voltage_v)))

    def voltage_for_frequency(self, frequency_hz: float) -> float:
        """Lowest supply in the functional window reaching ``frequency_hz``."""
        v = self.frequency.voltage_for_frequency(
            frequency_hz, v_max=self.max_operating_v
        )
        return max(v, self.min_operating_v)

    # -- the conventional minimum energy point ------------------------------------

    def conventional_mep(
        self, low_v: "float | None" = None, high_v: "float | None" = None
    ) -> MinimumEnergyPoint:
        """The classic MEP: minimise ``Edyn + Eleak`` per cycle over supply.

        This is the module-local optimum the paper's Section V revisits;
        it ignores any regulator between the harvester and these pins.
        """
        low = self.min_operating_v if low_v is None else low_v
        high = self.max_operating_v if high_v is None else high_v
        if not self.min_operating_v <= low < high <= self.max_operating_v:
            raise ModelParameterError(f"invalid MEP search window [{low}, {high}]")

        grid = np.linspace(low, high, 96)
        energies = self.energy_per_cycle(grid)
        seed = int(np.argmin(energies))
        bracket_low = grid[max(seed - 1, 0)]
        bracket_high = grid[min(seed + 1, len(grid) - 1)]
        result = minimize_scalar(
            lambda v: float(self.energy_per_cycle(float(v))),
            bounds=(bracket_low, bracket_high),
            method="bounded",
            options={"xatol": 1e-6},
        )
        v_mep = float(result.x)
        return MinimumEnergyPoint(
            voltage_v=v_mep,
            energy_per_cycle_j=float(self.energy_per_cycle(v_mep)),
            frequency_hz=float(self.max_frequency(v_mep)),
        )


def paper_processor() -> ProcessorModel:
    """The paper's 65 nm image processor, calibrated to Section VII.

    Calibration targets:

    * a 64x64 frame (~6M cycles through the functional pipeline of
      :mod:`repro.processor.image`) takes ~15 ms at 0.5 V, i.e.
      ~400 MHz at 0.5 V;
    * the frequency curve reaches ~1 GHz near 1.0 V (Fig. 11(a));
    * at maximum speed the power-voltage curve crosses the solar cell's
      current-limited region near 0.7 V (Fig. 6(a));
    * the conventional MEP lands near 0.3 V (Fig. 11(a)).
    """
    return ProcessorModel(
        frequency=FrequencyModel(
            drive_scale_hz=mega_hertz(29.17),
            threshold_v=0.25,
            alpha=1.5,
            subthreshold_slope_factor=1.35,
            min_voltage_v=0.05,
        ),
        dynamic=DynamicPowerModel(effective_capacitance_f=pico_farads(32.0)),
        leakage=LeakageModel(reference_current_a=milli_amps(0.84), dibl_voltage_v=0.8),
        min_operating_v=0.15,
        max_operating_v=1.1,
    )
