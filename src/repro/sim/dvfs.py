"""DVFS controller interface and basic controllers.

The paper's system closes a feedback loop from the solar node, through
the regulator, down to the processor's clock and supply (Fig. 1).  In
the simulator that loop is a :class:`DvfsController`: every step it
sees the live node state and returns a :class:`ControlDecision` --
regulated at a voltage/frequency setpoint, bypassed, or halted.

The advanced controllers (discharge-time MPP tracking, sprinting) live
in :mod:`repro.core`; this module provides the protocol plus the simple
controllers the baselines and tests use.
"""

from __future__ import annotations

import abc
from typing import Callable, ClassVar, Optional
from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class ControllerView:
    """What a controller is allowed to observe each step.

    The live node voltage and time are physically measurable (the
    comparator bank); cycle progress is the processor's own counter.
    The true irradiance is deliberately *not* exposed -- controllers
    that need it must estimate it, as the paper's scheme does.

    ``recovering`` is the supply monitor's power-good line held low:
    the engine has power-gated the load after a brownout and is
    recharging the node; any work the controller commands is ignored
    until the line releases.  ``brownout_count`` counts completed
    brownout entries so far, so a controller can detect "I just came
    back from a brownout" and re-track instead of trusting stale state.
    """

    time_s: float
    node_voltage_v: float
    processor_voltage_v: float
    cycles_done: float
    comparator_events: tuple
    recovering: bool = False
    brownout_count: int = 0

    def __post_init__(self) -> None:
        if self.time_s < 0.0:
            raise ModelParameterError(f"time must be >= 0, got {self.time_s}")


@dataclass(frozen=True)
class ControlDecision:
    """One step's actuation.

    ``mode`` is one of:

    * ``"regulated"`` -- run the regulator at ``output_voltage_v`` and
      clock the processor at ``frequency_hz``;
    * ``"bypass"`` -- close the bypass switch (processor follows the
      node voltage) and clock at ``frequency_hz``;
    * ``"halt"`` -- gate the clock (leakage only, at the node voltage
      if bypassed, output voltage otherwise).
    """

    mode: str
    frequency_hz: float
    output_voltage_v: "float | None" = None

    VALID_MODES = ("regulated", "bypass", "halt")

    def __post_init__(self) -> None:
        if self.mode not in self.VALID_MODES:
            raise ModelParameterError(
                f"mode must be one of {self.VALID_MODES}, got {self.mode!r}"
            )
        if self.frequency_hz < 0.0:
            raise ModelParameterError(
                f"frequency must be >= 0, got {self.frequency_hz}"
            )
        if self.mode == "regulated" and (
            self.output_voltage_v is None or self.output_voltage_v <= 0.0
        ):
            raise ModelParameterError(
                "regulated mode needs a positive output voltage setpoint"
            )


class DvfsController(abc.ABC):
    """Per-step decision maker closing the Fig. 1 feedback loop."""

    #: Vectorization family tag for the fleet control plane
    #: (:mod:`repro.fleet.control`).  ``None`` (the default) means
    #: "unknown controller: advance per lane, exactly like the scalar
    #: engine".  Classes that set a tag promise their ``decide`` is
    #: fully described by the family's skip predicate; the control
    #: plane additionally verifies ``decide`` was not overridden, so a
    #: subclass with custom behaviour falls back automatically.
    VECTOR_FAMILY: ClassVar[Optional[str]] = None

    @abc.abstractmethod
    def decide(self, view: ControllerView) -> ControlDecision:
        """Return this step's actuation given the observable state."""

    def reset(self) -> None:
        """Clear controller state before a fresh run (default: nothing)."""


class FixedOperatingPointController(DvfsController):
    """Hold one regulated operating point forever.

    The simplest policy: what a conventionally-designed system does
    after picking its (local) optimum at design time.
    """

    VECTOR_FAMILY: ClassVar[Optional[str]] = "fixed"

    def __init__(self, output_voltage_v: float, frequency_hz: float) -> None:
        if output_voltage_v <= 0.0:
            raise ModelParameterError(
                f"output voltage must be positive, got {output_voltage_v}"
            )
        if frequency_hz <= 0.0:
            raise ModelParameterError(
                f"frequency must be positive, got {frequency_hz}"
            )
        self.output_voltage_v = output_voltage_v
        self.frequency_hz = frequency_hz

    def decide(self, view: ControllerView) -> ControlDecision:
        return ControlDecision(
            mode="regulated",
            frequency_hz=self.frequency_hz,
            output_voltage_v=self.output_voltage_v,
        )


class ConstantSpeedController(DvfsController):
    """Run at the deadline's average speed, halting when work is done.

    The paper's Fig. 9(b)/11(b) "w/o sprinting" baseline: constant
    frequency sized to ``N / T``, no speed modulation, regulator always
    on.
    """

    VECTOR_FAMILY: ClassVar[Optional[str]] = "constant_speed"

    def __init__(
        self, output_voltage_v: float, frequency_hz: float, total_cycles: int
    ) -> None:
        if output_voltage_v <= 0.0:
            raise ModelParameterError(
                f"output voltage must be positive, got {output_voltage_v}"
            )
        if frequency_hz <= 0.0:
            raise ModelParameterError(
                f"frequency must be positive, got {frequency_hz}"
            )
        if total_cycles <= 0:
            raise ModelParameterError(
                f"total cycles must be positive, got {total_cycles}"
            )
        self.output_voltage_v = output_voltage_v
        self.frequency_hz = frequency_hz
        self.total_cycles = total_cycles

    def decide(self, view: ControllerView) -> ControlDecision:
        if view.cycles_done >= self.total_cycles:
            return ControlDecision(
                mode="regulated",
                frequency_hz=0.0,
                output_voltage_v=self.output_voltage_v,
            )
        return ControlDecision(
            mode="regulated",
            frequency_hz=self.frequency_hz,
            output_voltage_v=self.output_voltage_v,
        )


class BypassController(DvfsController):
    """Always-bypassed operation at maximum safe speed.

    The passive-voltage-scaling baseline: the processor follows the
    node voltage and clocks as fast as that voltage allows (the caller
    provides the frequency law to avoid a dependency on the processor
    model here).
    """

    VECTOR_FAMILY: ClassVar[Optional[str]] = "bypass"

    def __init__(self, frequency_law: "Callable[[float], float]") -> None:
        if not callable(frequency_law):
            raise ModelParameterError("frequency_law must be callable: V -> Hz")
        self.frequency_law = frequency_law

    def decide(self, view: ControllerView) -> ControlDecision:
        return ControlDecision(
            mode="bypass",
            frequency_hz=max(0.0, float(self.frequency_law(view.node_voltage_v))),
        )
