"""Simulation result container.

Everything the figure reproductions need from a transient run: full
waveform traces as numpy arrays (the paper's Fig. 8(c), 9(b), 11(b)
waveforms), energy integrals, and completion/brownout bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from pathlib import Path

from repro.errors import ModelParameterError


@dataclass
class SimulationResult:
    """Recorded traces and summary of one transient run.

    All arrays share the same length (one entry per recorded step).
    """

    time_s: np.ndarray
    node_voltage_v: np.ndarray
    processor_voltage_v: np.ndarray
    frequency_hz: np.ndarray
    harvest_power_w: np.ndarray
    processor_power_w: np.ndarray
    draw_power_w: np.ndarray
    irradiance: np.ndarray
    mode: np.ndarray  # small-int codes, see MODE_CODES

    completed: bool = False
    completion_time_s: "float | None" = None
    browned_out: bool = False
    brownout_time_s: "float | None" = None
    brownout_count: int = 0
    downtime_s: float = 0.0
    final_cycles: float = 0.0
    events: list = field(default_factory=list)
    metrics: "dict[str, float] | None" = None

    MODE_CODES = {"regulated": 0, "bypass": 1, "halt": 2}

    def __post_init__(self) -> None:
        lengths = {
            len(self.time_s),
            len(self.node_voltage_v),
            len(self.processor_voltage_v),
            len(self.frequency_hz),
            len(self.harvest_power_w),
            len(self.processor_power_w),
            len(self.draw_power_w),
            len(self.irradiance),
            len(self.mode),
        }
        if len(lengths) != 1:
            raise ModelParameterError(
                f"trace arrays have inconsistent lengths: {sorted(lengths)}"
            )

    # -- energy integrals ------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Simulated time span."""
        if len(self.time_s) == 0:
            return 0.0
        return float(self.time_s[-1] - self.time_s[0])

    def harvested_energy_j(self) -> float:
        """Energy actually extracted from the solar cell (trapezoid)."""
        return float(np.trapezoid(self.harvest_power_w, self.time_s))

    def consumed_energy_j(self) -> float:
        """Energy delivered into the processor."""
        return float(np.trapezoid(self.processor_power_w, self.time_s))

    def conversion_loss_j(self) -> float:
        """Energy dissipated in the converter (draw minus delivered)."""
        return float(
            np.trapezoid(self.draw_power_w - self.processor_power_w, self.time_s)
        )

    # -- waveform queries ------------------------------------------------------

    def time_in_mode(self, mode: str) -> float:
        """Total time spent in a mode ("regulated"/"bypass"/"halt")."""
        if mode not in self.MODE_CODES:
            raise ModelParameterError(f"unknown mode {mode!r}")
        if len(self.time_s) < 2:
            return 0.0
        dt = np.diff(self.time_s)
        mask = self.mode[:-1] == self.MODE_CODES[mode]
        return float(np.sum(dt[mask]))

    def min_node_voltage_v(self) -> float:
        """Lowest solar-node voltage reached."""
        return float(np.min(self.node_voltage_v))

    def average_frequency_hz(self) -> float:
        """Time-averaged clock over the run."""
        if self.duration_s == 0.0:
            return 0.0
        return float(np.trapezoid(self.frequency_hz, self.time_s) / self.duration_s)

    def to_csv(self, path: "str | Path") -> None:
        """Write the recorded waveforms as CSV (one row per sample).

        Columns match the trace arrays; ``mode`` is written as its
        name.  For loading into pandas/spreadsheets to plot the
        Fig. 8/9(b)/11(b)-style waveforms.
        """
        code_to_name = {v: k for k, v in self.MODE_CODES.items()}
        header = (
            "time_s,node_voltage_v,processor_voltage_v,frequency_hz,"
            "harvest_power_w,processor_power_w,draw_power_w,irradiance,mode"
        )
        lines = [header]
        for i in range(len(self.time_s)):
            lines.append(
                f"{self.time_s[i]:.9g},{self.node_voltage_v[i]:.6g},"
                f"{self.processor_voltage_v[i]:.6g},{self.frequency_hz[i]:.6g},"
                f"{self.harvest_power_w[i]:.6g},{self.processor_power_w[i]:.6g},"
                f"{self.draw_power_w[i]:.6g},{self.irradiance[i]:.6g},"
                f"{code_to_name[int(self.mode[i])]}"
            )
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")

    def summary(self) -> "dict[str, float]":
        """Headline numbers for reports and benches.

        Key order is deterministic: the fixed headline keys, then
        ``time_in_mode.*`` in sorted mode order, then any telemetry
        metrics (already sorted) when the run was instrumented.
        """
        out = {
            "duration_s": self.duration_s,
            "completed": float(self.completed),
            "completion_time_s": (
                float("nan")
                if self.completion_time_s is None
                else self.completion_time_s
            ),
            "browned_out": float(self.browned_out),
            "brownout_count": float(self.brownout_count),
            "downtime_s": self.downtime_s,
            "harvested_energy_j": self.harvested_energy_j(),
            "consumed_energy_j": self.consumed_energy_j(),
            "conversion_loss_j": self.conversion_loss_j(),
            "final_cycles": self.final_cycles,
            "min_node_voltage_v": self.min_node_voltage_v(),
            "average_frequency_hz": self.average_frequency_hz(),
        }
        for name in sorted(self.MODE_CODES):
            out[f"time_in_mode.{name}"] = self.time_in_mode(name)
        if self.metrics is not None:
            for name in sorted(self.metrics):
                out[f"metrics.{name}"] = self.metrics[name]
        return out
