"""The transient simulation engine.

One electrical node (the solar node with its storage capacitor), a
converter path (regulator or bypass switch) and the processor load:

    C_node * dV/dt = I_pv(V_node, light(t)) - I_draw(t)

where ``I_draw`` is the converter's input current for the controller's
commanded operating point.  Forward-Euler at a microsecond-scale step
is ample for the millisecond-scale waveforms of the paper (node time
constants are tens of microseconds at the smallest).

The engine is deliberately policy-free: everything interesting happens
in the :class:`~repro.sim.dvfs.DvfsController` plugged into it, which
is exactly how the paper's chip splits hardware (fixed) from the energy
management scheme (the contribution).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import (
    ModelParameterError,
    OperatingRangeError,
    SimulationError,
)
from repro.monitor.comparator import ComparatorBank
from repro.processor.energy import ProcessorModel
from repro.processor.workloads import Workload
from repro.pv.cell import SingleDiodeCell
from repro.pv.traces import IrradianceTrace
from repro.regulators.base import Regulator
from repro.sim.dvfs import ControlDecision, ControllerView, DvfsController
from repro.sim.result import SimulationResult
from repro.sim.transitions import DvfsTransitionModel
from repro.storage.capacitor import Capacitor
from repro.telemetry.session import NULL_TELEMETRY, Telemetry

#: Longest run for which the per-step irradiance samples are
#: precomputed as a Python list (~2M steps = tens of MB); longer runs
#: fall back to per-step trace evaluation with identical values.
_IRR_PRECOMPUTE_MAX_SAMPLES = 2_000_001
#: Memoized (voltage, commanded-frequency) -> (clamped frequency,
#: processor power) pairs kept per run before the cache resets.  The
#: mapping is a pure function, so resetting is value-transparent.
_DECISION_CACHE_MAX = 65_536

#: Type of the per-run decision memo shared with the fleet engine.
DecisionCache = Optional[Dict[Tuple[float, float], Tuple[float, float]]]


def clamped_frequency_and_power(
    processor: ProcessorModel,
    v_eval: float,
    commanded_hz: float,
    cache: DecisionCache,
) -> "tuple[float, float]":
    """Supply-clamped frequency and processor power at ``v_eval``.

    A pure function of its float arguments, so the per-run memo (keyed
    on the exact doubles) is value-transparent: the engine revisits the
    same setpoints thousands of times per run, and the frequency/power
    models cost microseconds each.  Module-level so the scalar engine
    and the batched fleet engine resolve decisions through the *same*
    code path (their equivalence is asserted bit-for-bit).
    """
    if cache is not None:
        hit = cache.get((v_eval, commanded_hz))
        if hit is not None:
            return hit
    f = min(commanded_hz, float(processor.max_frequency(v_eval)))
    p_proc = float(processor.power(v_eval, f))
    if cache is not None:
        if len(cache) >= _DECISION_CACHE_MAX:
            cache.clear()
        cache[(v_eval, commanded_hz)] = (f, p_proc)
    return (f, p_proc)


def resolve_decision(
    processor: ProcessorModel,
    regulator: Regulator,
    decision: ControlDecision,
    v_node: float,
    cache: DecisionCache = None,
) -> "tuple[float, float, float, float, str]":
    """Turn a decision into ``(v_proc, f, p_proc, p_draw, mode)``.

    Clamps the commanded frequency to what the supply allows and
    degrades gracefully (to halt) when the converter cannot operate
    from the present node voltage.  Shared by
    :class:`TransientSimulator` and :class:`repro.fleet.FleetSimulator`.
    """
    if decision.mode == "halt":
        # Power-gated: no draw from the node at all.
        return (0.0, 0.0, 0.0, 0.0, "halt")

    if decision.mode == "bypass":
        v_proc = v_node
        if v_proc < processor.min_operating_v:
            return (v_proc, 0.0, 0.0, 0.0, "halt")
        v_eval = min(v_proc, processor.max_operating_v)
        f, p_proc = clamped_frequency_and_power(
            processor, v_eval, decision.frequency_hz, cache
        )
        return (v_proc, f, p_proc, p_proc, "bypass")

    # Regulated.
    v_out = decision.output_voltage_v
    if v_out < processor.min_operating_v:
        return (v_out, 0.0, 0.0, 0.0, "halt")
    f, p_proc = clamped_frequency_and_power(
        processor, v_out, decision.frequency_hz, cache
    )
    try:
        p_draw = regulator.input_power(v_out, p_proc, v_in=v_node)
    except OperatingRangeError:
        # Node too low (duty limit / no ratio band): converter dropout.
        return (v_out, 0.0, 0.0, 0.0, "halt")
    return (v_out, f, p_proc, p_draw, "regulated")


@dataclass(frozen=True)
class SimulationConfig:
    """Numerical and termination settings for a run.

    Brownout handling comes in three flavours:

    * ``stop_on_brownout=True`` (default): the first brownout ends the
      run -- the historical terminal semantics.
    * ``stop_on_brownout=False``: the run continues with the load
      stalled; the node may or may not recover on its own.
    * ``recover_from_brownout=True`` (requires ``stop_on_brownout=
      False``): halt-and-recharge recovery -- on brownout the load is
      power-gated, the node recharges until it reaches
      ``recovery_voltage_v`` (the supply monitor's power-good level,
      hysteretically above the collapse voltage), the controller is
      notified through :class:`~repro.sim.dvfs.ControllerView`, and the
      run continues.  Downtime and brownout counts are accounted in the
      result.

    PV solver selection (see ``docs/performance.md``):

    * default: the scalar Newton fast path -- bit-identical to the
      historical array solver, one solve per step.
    * ``fast_pv=True``: opt-in pre-characterized
      :class:`~repro.perf.surface.PvSurface` bilinear lookup --
      approximate within a documented tolerance, never bit-exact, so
      it is off by default.
    * ``pv_reference=True``: the pre-optimization reference path (array
      solves, duplicate power solve, per-step scalar trace lookup, no
      decision memoization).  Exists so benchmarks can measure the fast
      path against the original engine honestly; results are
      bit-identical to the default path, just slower.
    """

    time_step_s: float = 10e-6
    record_every: int = 1
    stop_on_completion: bool = False
    stop_on_brownout: bool = True
    recover_from_brownout: bool = False
    recovery_voltage_v: float = 1.0
    max_steps: int = 20_000_000
    fast_pv: bool = False
    pv_reference: bool = False

    def __post_init__(self) -> None:
        if self.time_step_s <= 0.0:
            raise ModelParameterError(
                f"time step must be positive, got {self.time_step_s}"
            )
        if self.record_every < 1:
            raise ModelParameterError(
                f"record_every must be >= 1, got {self.record_every}"
            )
        if self.max_steps < 1:
            raise ModelParameterError(
                f"max_steps must be >= 1, got {self.max_steps}"
            )
        if self.recovery_voltage_v <= 0.0:
            raise ModelParameterError(
                f"recovery voltage must be positive, got "
                f"{self.recovery_voltage_v}"
            )
        if self.recover_from_brownout and self.stop_on_brownout:
            raise ModelParameterError(
                "recover_from_brownout requires stop_on_brownout=False "
                "(a run cannot both terminate and recover on brownout)"
            )
        if self.fast_pv and self.pv_reference:
            raise ModelParameterError(
                "fast_pv and pv_reference are mutually exclusive "
                "(the reference path exists to benchmark against)"
            )


class TransientSimulator:
    """Simulate the battery-less SoC on an irradiance trace.

    Parameters
    ----------
    cell / node_capacitor / processor:
        The physical substrates.
    regulator:
        The converter used in "regulated" mode decisions.
    controller:
        The DVFS policy closing the loop.
    comparators:
        Optional comparator bank observing the node (its crossings are
        fed back to the controller, its draw is charged to the node).
    workload:
        Optional workload; when given, completion is tracked.
    transitions:
        Optional DVFS transition-cost model; when given, every mode or
        setpoint change gates the clock for the settle time and draws
        the rail-recharge energy from the node.
    telemetry:
        Optional :class:`~repro.telemetry.session.Telemetry` sink.
        The engine emits sim-time events/spans (mode switches, DVFS
        transitions, brownouts, recoveries) and per-run metrics into
        it; the default no-op sink records nothing and adds no
        per-step work.
    """

    def __init__(
        self,
        cell: SingleDiodeCell,
        node_capacitor: Capacitor,
        processor: ProcessorModel,
        regulator: Regulator,
        controller: DvfsController,
        comparators: "ComparatorBank | None" = None,
        workload: "Workload | None" = None,
        config: "SimulationConfig | None" = None,
        transitions: "DvfsTransitionModel | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.cell = cell
        self.node_capacitor = node_capacitor
        self.processor = processor
        self.regulator = regulator
        self.controller = controller
        self.comparators = comparators
        self.workload = workload
        self.config = config or SimulationConfig()
        self.transitions = transitions
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    # -- one actuation resolution -------------------------------------------------

    def _clamped_frequency_and_power(
        self,
        v_eval: float,
        commanded_hz: float,
        cache: "dict[tuple[float, float], tuple[float, float]] | None",
    ) -> "tuple[float, float]":
        """Delegates to :func:`clamped_frequency_and_power`."""
        return clamped_frequency_and_power(
            self.processor, v_eval, commanded_hz, cache
        )

    def _resolve_decision(
        self,
        decision: ControlDecision,
        v_node: float,
        cache: "dict[tuple[float, float], tuple[float, float]] | None" = None,
    ) -> "tuple[float, float, float, float, str]":
        """Delegates to the shared :func:`resolve_decision`."""
        return resolve_decision(
            self.processor, self.regulator, decision, v_node, cache
        )

    # -- the run -------------------------------------------------------------------

    def run(self, trace: IrradianceTrace, duration_s: "float | None" = None) -> SimulationResult:
        """Simulate over the trace; returns the recorded result.

        ``duration_s`` defaults to the trace duration.  The node
        capacitor is mutated in place (copy it first to preserve a
        bench setup).
        """
        cfg = self.config
        dt = cfg.time_step_s
        if duration_s is None:
            duration_s = trace.duration_s
        if duration_s <= 0.0:
            raise ModelParameterError(f"duration must be positive, got {duration_s}")
        steps = int(np.ceil(duration_s / dt))
        if steps > cfg.max_steps:
            raise SimulationError(
                f"{steps} steps exceed max_steps={cfg.max_steps}; "
                "raise time_step_s or max_steps"
            )

        self.controller.reset()
        if self.comparators is not None:
            self.comparators.reset()

        # -- hot-path strategy selection ------------------------------
        # Default: one cold-started scalar Newton solve per step --
        # bit-identical to the historical two array solves.  fast_pv
        # swaps in the pre-characterized bilinear surface (approximate,
        # opt-in).  pv_reference restores the pre-optimization loop
        # exactly (array solves, duplicated power solve, per-step trace
        # interpolation, no memoization) for honest benchmarking.
        cell = self.cell
        node_capacitor = self.node_capacitor
        use_reference = cfg.pv_reference
        scalar_solve = getattr(cell, "current_scalar", None)
        pv_current: "Callable[[float, float], float] | None" = None
        if not use_reference:
            if cfg.fast_pv:
                from repro.perf.surface import surface_for_cell

                pv_current = surface_for_cell(cell).current
            elif scalar_solve is not None:
                pv_current = scalar_solve

        decision_cache: (
            "dict[tuple[float, float], tuple[float, float]] | None"
        ) = None if use_reference else {}

        # Piecewise traces are pure interpolation, so the whole run's
        # per-step irradiance can be evaluated up front in one
        # vectorised sweep (bit-identical to per-step calls -- see
        # IrradianceTrace.step_samples).
        irr_samples: "list[float] | None" = None
        if not use_reference and steps + 1 <= _IRR_PRECOMPUTE_MAX_SAMPLES:
            sampler = getattr(trace, "step_samples", None)
            if sampler is not None:
                irr_samples = sampler(dt, steps).tolist()

        # Telemetry: sim-time tracing plus wall-clock profiling.  The
        # default sink is a shared no-op, so the per-step cost when
        # disabled is one string comparison (the mode-switch check).
        tel = self.telemetry
        wall_started = time.perf_counter()
        tel.begin_span(
            "engine.run", 0.0, track="engine",
            dt_s=dt, planned_steps=steps,
        )
        telemetry_mode: "str | None" = None
        outage_started_s: "float | None" = None

        record_count = steps // cfg.record_every + 1
        rec_t = np.empty(record_count)
        rec_vnode = np.empty(record_count)
        rec_vproc = np.empty(record_count)
        rec_f = np.empty(record_count)
        rec_ppv = np.empty(record_count)
        rec_pproc = np.empty(record_count)
        rec_pdraw = np.empty(record_count)
        rec_irr = np.empty(record_count)
        rec_mode = np.empty(record_count, dtype=np.int8)

        mode_codes = SimulationResult.MODE_CODES
        comparator_power = (
            self.comparators.total_power_w if self.comparators is not None else 0.0
        )
        target_cycles = self.workload.cycles if self.workload is not None else None

        cycles = 0.0
        prev_v_proc = 0.0
        prev_mode: "str | None" = None
        prev_setpoint_v = 0.0
        lockout_until = -1.0
        transition_count = 0
        pending_events: "tuple" = ()
        completed = False
        completion_time = None
        browned_out = False
        brownout_time = None
        brownout_count = 0
        downtime_s = 0.0
        recovering = False
        in_brownout = False
        node_collapsed = False
        events: list = []
        recorded = 0

        t = 0.0
        for step in range(steps + 1):
            v_node = node_capacitor.voltage_v
            irr = irr_samples[step] if irr_samples is not None else trace(t)

            # Single PV solve per step: current once, power derived
            # (power() is V * I(V), so p_pv is bit-identical to the old
            # second solve).  The reference path recomputes below with
            # the original array calls.
            if pv_current is not None:
                i_pv = pv_current(v_node, irr)
                p_pv = v_node * i_pv
            else:
                i_pv = 0.0
                p_pv = 0.0

            # Power-good release: the node has recharged past the
            # recovery threshold, so the load may reconnect this step.
            if recovering and v_node >= cfg.recovery_voltage_v:
                recovering = False
                events.append(("recovered", t))
                tel.event("recovered", t, track="engine", node_v=v_node)
                if outage_started_s is not None:
                    tel.end_span(t)
                    tel.observe("brownout.outage_s", t - outage_started_s)
                    outage_started_s = None

            view = ControllerView(
                time_s=t,
                node_voltage_v=v_node,
                processor_voltage_v=prev_v_proc,
                cycles_done=cycles,
                comparator_events=pending_events,
                recovering=recovering,
                brownout_count=brownout_count,
            )
            decision = self.controller.decide(view)
            v_proc, f, p_proc, p_draw, mode = self._resolve_decision(
                decision, v_node, decision_cache
            )
            if recovering:
                # Load power-gated while the node recharges; whatever
                # the controller commanded is ignored until power-good.
                v_proc, f, p_proc, p_draw, mode = (0.0, 0.0, 0.0, 0.0, "halt")
            prev_v_proc = v_proc

            # DVFS transition accounting: settle lockout + rail recharge.
            if self.transitions is not None:
                if self.transitions.is_transition(
                    prev_mode, prev_setpoint_v, mode, v_proc
                ):
                    transition_count += 1
                    tel.count("dvfs.transitions")
                    tel.event(
                        "dvfs.transition", t, track="engine",
                        previous=prev_mode or "", new=mode,
                        setpoint_v=v_proc,
                    )
                    lockout_until = t + self.transitions.settle_time_s
                    recharge = self.transitions.transition_energy_j(
                        prev_setpoint_v, v_proc
                    )
                    if recharge > 0.0:
                        p_draw += recharge / dt
                if mode != "halt":
                    prev_mode = mode
                    prev_setpoint_v = v_proc
                if t < lockout_until and f > 0.0:
                    # Clock gated while the supply settles.
                    f = 0.0
                    p_proc = (
                        float(self.processor.leakage.power(v_proc))
                        if v_proc >= self.processor.min_operating_v
                        else 0.0
                    )
                    if mode == "regulated":
                        try:
                            p_draw = max(
                                p_draw,
                                self.regulator.input_power(
                                    v_proc, p_proc, v_in=v_node
                                ),
                            )
                        except OperatingRangeError:
                            pass
                    elif mode == "bypass":
                        p_draw = p_proc

            # Converter-path mode switch (regulated <-> bypass <-> halt).
            # Checked before the brownout block so the final switch into
            # halt is still counted when stop_on_brownout breaks the loop.
            if mode != telemetry_mode:
                if telemetry_mode is not None:
                    tel.count("regulator.mode_switches")
                    tel.event(
                        "regulator.mode_switch", t, track="engine",
                        previous=telemetry_mode, new=mode, node_v=v_node,
                    )
                telemetry_mode = mode

            # Brownout: the controller asked for work the supply cannot run.
            stalled = (
                decision.frequency_hz > 0.0
                and f == 0.0
                and mode == "halt"
                and decision.mode != "halt"
                and not completed
                and not recovering
            )
            if stalled and not in_brownout:
                in_brownout = True
                browned_out = True
                brownout_count += 1
                if brownout_time is None:
                    brownout_time = t
                events.append(("brownout", t))
                tel.count("brownout.count")
                tel.event("brownout", t, track="engine", node_v=v_node)
                if cfg.stop_on_brownout:
                    if step % cfg.record_every == 0:
                        rec_t[recorded] = t
                        rec_vnode[recorded] = v_node
                        rec_vproc[recorded] = v_proc
                        rec_f[recorded] = 0.0
                        # Reuse the step's already-solved PV power; the
                        # reference path keeps the historical duplicate
                        # solve it is benchmarked against.
                        rec_ppv[recorded] = (
                            p_pv
                            if pv_current is not None
                            else float(cell.power(v_node, irr))
                        )
                        rec_pproc[recorded] = 0.0
                        rec_pdraw[recorded] = 0.0
                        rec_irr[recorded] = irr
                        rec_mode[recorded] = mode_codes["halt"]
                        recorded += 1
                    break
                if cfg.recover_from_brownout:
                    # Enter halt-and-recharge: power-gate the load until
                    # the node climbs back to the recovery threshold.
                    recovering = True
                    if outage_started_s is None:
                        tel.begin_span("brownout.outage", t, track="engine")
                        outage_started_s = t
                    v_proc, f, p_proc, p_draw, mode = (
                        0.0, 0.0, 0.0, 0.0, "halt",
                    )
                    prev_v_proc = 0.0
            elif f > 0.0:
                # Work resumed: the next stall is a fresh brownout.
                in_brownout = False

            if pv_current is None:
                p_pv = float(cell.power(v_node, irr))
            if step % cfg.record_every == 0:
                rec_t[recorded] = t
                rec_vnode[recorded] = v_node
                rec_vproc[recorded] = v_proc
                rec_f[recorded] = f
                rec_ppv[recorded] = p_pv
                rec_pproc[recorded] = p_proc
                rec_pdraw[recorded] = p_draw
                rec_irr[recorded] = irr
                rec_mode[recorded] = mode_codes[mode]
                recorded += 1

            if step == steps:
                break

            # Cycle bookkeeping and completion detection.
            new_cycles = cycles + f * dt
            if (
                target_cycles is not None
                and not completed
                and new_cycles >= target_cycles
            ):
                completed = True
                # Linear interpolation of the crossing instant.
                if f > 0.0:
                    completion_time = t + (target_cycles - cycles) / f
                else:
                    completion_time = t
                events.append(("completed", completion_time))
                tel.event(
                    "workload.completed", completion_time, track="engine",
                    cycles=float(target_cycles),
                )
                if cfg.stop_on_completion:
                    cycles = new_cycles
                    break
            cycles = new_cycles

            # Downtime: the load is power-gated because of a brownout
            # (either recharging in recovery mode or stalled dark).
            if recovering or (in_brownout and f == 0.0):
                downtime_s += dt

            # Node update: PV source in, converter + comparators out.
            if pv_current is None:
                i_pv = float(cell.current(v_node, irr))
            demand_w = p_draw + comparator_power
            if v_node > 1e-6:
                i_draw = demand_w / v_node
                node_collapsed = False
            else:
                # Fully collapsed node: a 0 V supply cannot source the
                # converter or the monitor electronics, so the demand is
                # explicitly dropped (everything downstream is dead) and
                # the collapse is recorded instead of the power
                # silently vanishing from the energy balance.
                i_draw = 0.0
                if demand_w > 0.0 and not node_collapsed:
                    node_collapsed = True
                    events.append(("node_collapse", t))
                    tel.event("node.collapse", t, track="engine")
            node_capacitor.apply_current(i_pv - i_draw, dt)
            if not np.isfinite(node_capacitor.voltage_v):
                raise SimulationError(f"node voltage became non-finite at t={t}")

            # Comparator observation feeds the next step's view.
            if self.comparators is not None:
                pending_events = tuple(
                    self.comparators.observe(t + dt, node_capacitor.voltage_v)
                )
            else:
                pending_events = ()

            t += dt

        if outage_started_s is not None:
            # Run ended while still browned out: close the span at the
            # final simulated time so the trace stays balanced.
            tel.end_span(t)
            tel.observe("brownout.outage_s", t - outage_started_s)
        tel.end_span(t, steps=float(step + 1))
        tel.count("engine.steps", float(step + 1))
        tel.gauge("brownout.downtime_s", downtime_s)
        tel.gauge("engine.final_cycles", float(cycles))
        tel.profile("engine.run_wall_s", time.perf_counter() - wall_started)

        result = SimulationResult(
            time_s=rec_t[:recorded].copy(),
            node_voltage_v=rec_vnode[:recorded].copy(),
            processor_voltage_v=rec_vproc[:recorded].copy(),
            frequency_hz=rec_f[:recorded].copy(),
            harvest_power_w=rec_ppv[:recorded].copy(),
            processor_power_w=rec_pproc[:recorded].copy(),
            draw_power_w=rec_pdraw[:recorded].copy(),
            irradiance=rec_irr[:recorded].copy(),
            mode=rec_mode[:recorded].copy(),
            completed=completed,
            completion_time_s=completion_time,
            browned_out=browned_out,
            brownout_time_s=brownout_time,
            brownout_count=brownout_count,
            downtime_s=downtime_s,
            final_cycles=cycles,
            events=events,
            metrics=tel.result_metrics(),
        )
        result.events.extend(
            [("transitions", float(transition_count))]
            if self.transitions is not None
            else []
        )
        return result
