"""DVFS transition costs.

The paper argues fully-integrated regulators give "faster DVFS
response" than discrete modules -- which matters because every retune
(MPP tracking, sprint phase changes, duty cycling) is not free: the
regulator must re-settle to the new output voltage (a lockout during
which the clock is gated) and the output decoupling capacitance must be
re-charged through the converter (a one-shot energy cost).

:class:`DvfsTransitionModel` quantifies both; the transient simulator
applies it whenever the commanded mode or output voltage changes, so
schemes that retune often pay for it -- and the integrated-regulator
advantage (microsecond settling vs the tens of microseconds of a
discrete part) becomes measurable in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.units import micro_farads, micro_seconds, milli_seconds


@dataclass(frozen=True)
class DvfsTransitionModel:
    """Time and energy cost of one operating-point change.

    Parameters
    ----------
    settle_time_s:
        Clock-gated lockout while the regulator slews and the clock
        generator re-locks.  Fully-integrated regulators settle in
        about a microsecond; discrete module solutions take tens.
    output_capacitance_f:
        Decoupling capacitance at the processor supply that must be
        charged/discharged across the voltage step.
    voltage_tolerance_v:
        Output-voltage changes smaller than this do not count as a
        transition (setpoint dither from a quantised controller).
    """

    settle_time_s: float = 1e-6
    output_capacitance_f: float = 2e-9
    voltage_tolerance_v: float = 1e-3

    def __post_init__(self) -> None:
        if self.settle_time_s < 0.0:
            raise ModelParameterError(
                f"settle time must be >= 0, got {self.settle_time_s}"
            )
        if self.output_capacitance_f < 0.0:
            raise ModelParameterError(
                f"output capacitance must be >= 0, got "
                f"{self.output_capacitance_f}"
            )
        if self.voltage_tolerance_v < 0.0:
            raise ModelParameterError(
                f"voltage tolerance must be >= 0, got "
                f"{self.voltage_tolerance_v}"
            )

    def is_transition(
        self,
        previous_mode: "str | None",
        previous_v: float,
        new_mode: str,
        new_v: float,
    ) -> bool:
        """Whether a (mode, voltage) change constitutes a transition.

        The first actuation (no previous mode) and halts are free;
        entering or leaving bypass, or moving the regulated setpoint by
        more than the tolerance, are transitions.
        """
        if previous_mode is None or new_mode == "halt":
            return False
        if previous_mode == "halt":
            return True
        if previous_mode != new_mode:
            return True
        return abs(new_v - previous_v) > self.voltage_tolerance_v

    def transition_energy_j(self, previous_v: float, new_v: float) -> float:
        """One-shot supply-rail recharge energy for the voltage step.

        Upward steps cost ``C/2 (Vnew^2 - Vold^2)`` drawn through the
        converter; downward steps are modelled as free (the rail is
        bled, not recovered) -- the asymmetry that makes frequent
        up-down dithering expensive.
        """
        if new_v <= previous_v:
            return 0.0
        return (
            0.5
            * self.output_capacitance_f
            * (new_v * new_v - previous_v * previous_v)
        )


#: The paper's fully-integrated case: ~1 us settling.
INTEGRATED_TRANSITIONS = DvfsTransitionModel(settle_time_s=micro_seconds(1.0))

#: A discrete multi-chip power-management solution for comparison
#: (the Fig. 1 "multi-chip solutions" column): tens of microseconds.
DISCRETE_TRANSITIONS = DvfsTransitionModel(
    settle_time_s=milli_seconds(0.05), output_capacitance_f=micro_farads(0.1)
)
