"""Event definitions and light-change detection helpers.

The transient runs are driven by irradiance traces; the experiments
need to know when the *controller* noticed a change versus when the
change physically happened.  :func:`detect_light_steps` extracts the
physical step times from a trace (ground truth), while the controllers
only ever see comparator crossings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError
from repro.pv.traces import IrradianceTrace


@dataclass(frozen=True)
class LightStepEvent:
    """A physical irradiance step in a trace (ground truth)."""

    time_s: float
    before: float
    after: float

    @property
    def magnitude(self) -> float:
        """Relative change ``|after - before| / max(before, after)``."""
        top = max(self.before, self.after)
        if top == 0.0:
            return 0.0
        return abs(self.after - self.before) / top


def detect_light_steps(
    trace: IrradianceTrace, min_relative_change: float = 0.1
) -> "list[LightStepEvent]":
    """Extract significant steps from a piecewise-linear trace.

    A "step" is a segment between consecutive breakpoints whose value
    change is at least ``min_relative_change`` of the larger endpoint.
    Used by experiments to measure controller reaction latency against
    ground truth.
    """
    if not 0.0 < min_relative_change <= 1.0:
        raise ModelParameterError(
            f"min relative change must be in (0, 1], got {min_relative_change}"
        )
    events = []
    for t0, t1, v0, v1 in zip(
        trace.times_s, trace.times_s[1:], trace.values, trace.values[1:]
    ):
        top = max(v0, v1)
        if top == 0.0:
            continue
        if abs(v1 - v0) / top >= min_relative_change:
            events.append(
                LightStepEvent(time_s=0.5 * (t0 + t1), before=v0, after=v1)
            )
    return events
