"""Discrete-time transient simulator substrate.

Replaces the paper's Cadence transient simulations and bench
measurements (Figs. 8, 9(b), 11(b)): a one-node circuit simulator for
the battery-less system -- solar cell into the node capacitor, a
regulator (or bypass switch) between the node and the processor, and a
pluggable DVFS controller closing the loop, exactly the feedback path
of Fig. 1.

The simulator integrates the node ODE ``C dV/dt = I_pv(V) - I_draw``
with a fixed microsecond-scale step, feeds every sample to the
comparator bank, lets the controller react, and records full waveform
traces for the figure reproductions.
"""

from repro.sim.dvfs import (
    ControlDecision,
    DvfsController,
    FixedOperatingPointController,
    ConstantSpeedController,
)
from repro.sim.engine import TransientSimulator, SimulationConfig
from repro.sim.events import LightStepEvent, detect_light_steps
from repro.sim.result import SimulationResult

__all__ = [
    "ControlDecision",
    "DvfsController",
    "FixedOperatingPointController",
    "ConstantSpeedController",
    "TransientSimulator",
    "SimulationConfig",
    "SimulationResult",
    "LightStepEvent",
    "detect_light_steps",
]
