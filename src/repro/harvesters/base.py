"""The harvester interface the energy machinery consumes.

Defined as a :class:`typing.Protocol` (structural typing): any object
with these methods works everywhere a
:class:`~repro.pv.cell.SingleDiodeCell` does -- the optimizers, the
MPP solver (:func:`repro.pv.mpp.find_mpp` accepts any harvester), the
lookup-table builder and the transient simulator.

The ``intensity`` argument generalises the solar code's ``irradiance``:
relative environmental strength on [0, ~1.2], where 1.0 is the
reference condition (full sun for a cell, nominal temperature gradient
for a TEG).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Harvester(Protocol):
    """Structural interface of an energy harvester."""

    def current(
        self, voltage: "float | np.ndarray", irradiance: float = 1.0
    ) -> "float | np.ndarray":
        """Terminal current at the given voltage(s) [A]."""

    def power(
        self, voltage: "float | np.ndarray", irradiance: float = 1.0
    ) -> "float | np.ndarray":
        """Delivered power ``V * I(V)`` [W]."""

    def open_circuit_voltage(self, irradiance: float = 1.0) -> float:
        """Voltage at zero terminal current [V]."""

    def short_circuit_current(self, irradiance: float = 1.0) -> float:
        """Current at zero terminal voltage [A]."""
