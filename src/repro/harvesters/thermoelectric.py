"""Thermoelectric generator (TEG) model.

A TEG is electrically a Thevenin source: the Seebeck voltage
``Voc = S_total * dT`` behind an internal resistance, so

    I(V) = (Voc(intensity) - V) / R_internal

with ``intensity`` scaling the temperature gradient linearly.  The I-V
line makes the maximum power point exactly ``Voc / 2`` delivering
``Voc^2 / 4R`` -- a different curve *shape* than the photovoltaic
exponential, which is precisely why it exercises the holistic
machinery's generality: MPP fractions, bypass crossovers and tracking
all land at different voltages than with the solar cell, with zero
code changes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelParameterError


class ThermoelectricGenerator:
    """Seebeck source with internal resistance.

    Parameters
    ----------
    seebeck_v_per_k:
        Total module Seebeck coefficient (couples in series give tens
        of mV/K).
    reference_gradient_k:
        Temperature difference across the module at intensity 1.0.
    internal_resistance_ohm:
        Electrical resistance of the couple stack.
    """

    def __init__(
        self,
        seebeck_v_per_k: float,
        reference_gradient_k: float,
        internal_resistance_ohm: float,
    ) -> None:
        if seebeck_v_per_k <= 0.0:
            raise ModelParameterError(
                f"Seebeck coefficient must be positive, got {seebeck_v_per_k}"
            )
        if reference_gradient_k <= 0.0:
            raise ModelParameterError(
                f"reference gradient must be positive, got {reference_gradient_k}"
            )
        if internal_resistance_ohm <= 0.0:
            raise ModelParameterError(
                f"internal resistance must be positive, got "
                f"{internal_resistance_ohm}"
            )
        self.seebeck_v_per_k = seebeck_v_per_k
        self.reference_gradient_k = reference_gradient_k
        self.internal_resistance_ohm = internal_resistance_ohm

    # -- Harvester interface -----------------------------------------------------

    def open_circuit_voltage(self, irradiance: float = 1.0) -> float:
        """Seebeck voltage at the scaled gradient [V]."""
        if irradiance < 0.0:
            raise ModelParameterError(
                f"intensity must be >= 0, got {irradiance}"
            )
        return (
            self.seebeck_v_per_k * self.reference_gradient_k * irradiance
        )

    def short_circuit_current(self, irradiance: float = 1.0) -> float:
        """``Voc / R`` [A]."""
        return self.open_circuit_voltage(irradiance) / self.internal_resistance_ohm

    def current(
        self, voltage: "float | np.ndarray", irradiance: float = 1.0
    ) -> "float | np.ndarray":
        """Linear I-V: ``(Voc - V) / R``; negative past Voc."""
        v = np.asarray(voltage, dtype=float)
        voc = self.open_circuit_voltage(irradiance)
        result = (voc - v) / self.internal_resistance_ohm
        if np.isscalar(voltage) or getattr(voltage, "ndim", 1) == 0:
            return float(result)
        return result

    def power(
        self, voltage: "float | np.ndarray", irradiance: float = 1.0
    ) -> "float | np.ndarray":
        """Delivered power ``V * I(V)`` [W]."""
        return np.asarray(voltage, dtype=float) * self.current(
            voltage, irradiance
        )

    # -- closed-form characteristics ------------------------------------------------

    def mpp_voltage(self, irradiance: float = 1.0) -> float:
        """The matched-load optimum: exactly half the Seebeck voltage."""
        return 0.5 * self.open_circuit_voltage(irradiance)

    def mpp_power(self, irradiance: float = 1.0) -> float:
        """``Voc^2 / 4R``."""
        voc = self.open_circuit_voltage(irradiance)
        return voc * voc / (4.0 * self.internal_resistance_ohm)


def wearable_teg() -> ThermoelectricGenerator:
    """A body-heat harvester sized like the paper's solar budget.

    A ~50 mV/K module across a ~30 K gradient behind ~72 ohm:
    Voc ~ 1.5 V (so the same processor/regulator voltage ranges apply)
    and an MPP of ~7.8 mW at 0.75 V -- between the solar cell's half-
    and full-sun conditions.
    """
    return ThermoelectricGenerator(
        seebeck_v_per_k=0.05,
        reference_gradient_k=30.0,
        internal_resistance_ohm=72.0,
    )
