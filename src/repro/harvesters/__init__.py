"""Alternative energy harvesters.

The paper's system is solar, but nothing in the holistic machinery is
solar-specific: the optimizers, trackers and simulator consume any
source exposing the harvester interface (terminal ``current``/``power``
versus voltage at an environmental intensity, plus ``Voc``/``Isc``) --
:class:`~repro.pv.cell.SingleDiodeCell` is simply the reference
implementation.

This package adds the other harvester common in deployed battery-less
nodes, a thermoelectric generator, demonstrating the generality: a TEG
drops straight into :class:`~repro.core.system.EnergyHarvestingSoC`
and every scheme (holistic operating point, MEP, discharge-time
tracking, sprinting) runs unchanged on body heat or machine waste heat
instead of light.
"""

from repro.harvesters.base import Harvester
from repro.harvesters.thermoelectric import (
    ThermoelectricGenerator,
    wearable_teg,
)

__all__ = ["Harvester", "ThermoelectricGenerator", "wearable_teg"]
