"""Structure-of-arrays run state for the batched fleet engine.

:class:`FleetState` is the lane-indexed snapshot of everything the
scalar engine keeps as loop-local scalars: capacitor voltages, the
controller-facing actuation memory (previous processor voltage, DVFS
transition bookkeeping), brownout/recovery flags, per-lane termination
bookkeeping, and the materialized per-node fault-draw parameters
(capacitance fade, leakage, ESR -- the RNG-derived values a campaign
seed produced).  Sentinels follow numpy conventions: ``NaN`` stands in
for the scalar engine's ``None`` on float fields, ``-1`` on int fields
(mode codes, end steps, seeds).

The dataclass is a plain bag of numpy arrays, so it pickles natively
(the sharded executor ships batches across spawn-safe process
boundaries) and reorders cheaply (:meth:`permuted` -- lane order is
physically meaningless, which ``tests/fleet`` asserts).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Sequence

import numpy as np

from repro.errors import ModelParameterError

#: Code for "no mode yet" in ``prev_mode``/``telemetry_mode`` lanes.
NO_MODE = -1


@dataclass(eq=False)
class FleetState:
    """Per-lane state of a fleet run (see module docstring).

    ``eq=False``: numpy fields make the generated ``__eq__`` ambiguous;
    use :meth:`equals` (NaN-aware exact comparison) instead.
    """

    #: Shared simulated time and step index (lanes advance in lockstep;
    #: dead lanes remember their own end in ``end_step``/``end_time_s``).
    time_s: float
    step: int

    # -- electrical / controller-facing state (float64, one per lane) --
    node_voltage_v: np.ndarray
    processor_voltage_v: np.ndarray
    cycles_done: np.ndarray
    prev_setpoint_v: np.ndarray
    lockout_until_s: np.ndarray
    downtime_s: np.ndarray
    completion_time_s: np.ndarray  # NaN = not completed
    brownout_time_s: np.ndarray  # NaN = never browned out
    outage_started_s: np.ndarray  # NaN = no open outage span
    end_time_s: np.ndarray  # NaN = still live

    # -- mode / counter state (ints, one per lane) --
    prev_mode: np.ndarray  # int8 MODE_CODES, NO_MODE = none yet
    telemetry_mode: np.ndarray  # int8 MODE_CODES, NO_MODE = none yet
    transition_count: np.ndarray  # int64
    brownout_count: np.ndarray  # int64
    end_step: np.ndarray  # int64, -1 = still live

    # -- flags (bool, one per lane) --
    completed: np.ndarray
    browned_out: np.ndarray
    recovering: np.ndarray
    in_brownout: np.ndarray
    node_collapsed: np.ndarray
    live: np.ndarray

    # -- control-plane classification (int8, one per lane) --
    #: :data:`repro.fleet.control.FAMILY_CODES` code of the lane's
    #: vectorized controller family, or
    #: :data:`~repro.fleet.control.FALLBACK_FAMILY` (-1) for lanes that
    #: ran the scalar per-lane fallback path.
    control_family: np.ndarray

    # -- materialized per-node fault draws (float64, one per lane) --
    capacitance_f: np.ndarray
    esr_ohm: np.ndarray
    max_voltage_v: np.ndarray
    leakage_current_a: np.ndarray
    #: Campaign seed that produced each lane's draw; -1 for lanes built
    #: outside a campaign.
    seeds: np.ndarray  # int64

    def __post_init__(self) -> None:
        lengths = {
            int(np.asarray(getattr(self, f.name)).shape[0])
            for f in fields(self)
            if f.name not in ("time_s", "step")
        }
        if len(lengths) != 1:
            raise ModelParameterError(
                f"lane arrays have inconsistent lengths: {sorted(lengths)}"
            )

    @property
    def lanes(self) -> int:
        """Number of lanes in the batch."""
        return int(self.node_voltage_v.shape[0])

    def equals(self, other: "FleetState") -> bool:
        """Exact (bit-level) equality; NaN sentinels compare equal."""
        if self.time_s != other.time_s or self.step != other.step:
            return False
        for f in fields(self):
            if f.name in ("time_s", "step"):
                continue
            a = getattr(self, f.name)
            b = getattr(other, f.name)
            if a.dtype.kind == "f":
                if not np.array_equal(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def permuted(self, order: Sequence[int]) -> "FleetState":
        """A new state with lanes reordered by ``order``.

        ``order`` must be a permutation of ``range(lanes)``; lane
        ``i`` of the result is lane ``order[i]`` of this state.
        """
        idx = np.asarray(order)
        if sorted(idx.tolist()) != list(range(self.lanes)):
            raise ModelParameterError(
                f"order must be a permutation of range({self.lanes})"
            )
        kwargs: Dict[str, Any] = {"time_s": self.time_s, "step": self.step}
        for f in fields(self):
            if f.name in ("time_s", "step"):
                continue
            kwargs[f.name] = getattr(self, f.name)[idx].copy()
        return FleetState(**kwargs)
