"""Vectorized control plane for the batched fleet engine.

The scalar :class:`~repro.sim.engine.TransientSimulator` calls
``controller.decide`` and :func:`~repro.sim.engine.resolve_decision`
once per lane per step.  For the stock controller families those calls
are overwhelmingly no-ops: a fixed-point controller returns the same
decision forever, an MPP tracker only re-tunes when a comparator pair
or probe threshold fires, a plan follower only moves at slot
boundaries.  The control plane exploits that by keeping the
*controllers as the source of truth* while mirroring exactly the state
that determines when the next real ``decide`` call is needed:

* **classification** (:func:`classify_controller`): at fleet
  construction each lane's controller is assigned a vectorization
  family; unknown subclasses, overridden ``decide`` methods, or lanes
  with DVFS transition models fall back to the scalar per-lane path.
* **skip predicates** (:meth:`ControlPlane.decision_flags`): per
  family, a masked numpy expression reproducing the controller's own
  trigger conditions flags the lanes whose ``decide`` could mutate
  state or change its output this step.  Flagged lanes get a *real*
  ``decide`` call on a faithfully reconstructed view; skipped steps
  are provably no-ops.
* **vector resolution** (:meth:`ControlPlane.resolve`): between real
  calls each lane's decision is constant, so its
  ``resolve_decision`` outcome collapses into a small per-lane record
  -- constant halt, a regulated setpoint whose only per-step work is
  the switched-capacitor ratio scan, or a bypass point evaluated
  through the (elementwise, hence batchable) processor models.  The
  ratio scan itself is hoisted into a per-band-plan
  :class:`ScBandTable` evaluated as array ops in the exact expression
  order of ``SwitchedCapacitorRegulator._best_band``, so every float
  it produces is bit-identical to the scalar loop by construction
  (asserted by the differential harness in ``tests/fleet``).

Bit-exactness ground rules observed throughout (empirically verified
in the differential tests):

* numpy elementwise ``+ - * /``, ``np.minimum``/``np.maximum``,
  ``np.exp``/``np.log1p``/``np.clip`` and non-integer ``**`` match
  the equivalent python-float expression for float64 operands;
* python ``x ** 2`` (libm ``pow``) is *not* always ``x * x``; the
  planner energy gate therefore keeps the scalar expression for the
  (rare) lanes inside a guard band around the threshold and decides
  every other lane with a vectorized approximation that provably
  agrees (:meth:`ControlPlane._planner_gate`);
* expression order and association are preserved verbatim -- the
  point is never "close", always "equal".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence, cast

import numpy as np

from repro.core.duty_cycle import DutyCycleController
from repro.core.mppt import MppTrackingController
from repro.errors import ModelParameterError
from repro.monitor.comparator import ComparatorBank
from repro.parallel.ids import stable_fingerprint
from repro.planner.adapter import PlanController, RecedingHorizonController
from repro.planner.dp import PlannerAction
from repro.processor.energy import ProcessorModel
from repro.regulators.base import Regulator
from repro.regulators.switched_capacitor import (
    ScBandPlan,
    SwitchedCapacitorRegulator,
)
from repro.sim.dvfs import (
    BypassController,
    ConstantSpeedController,
    ControlDecision,
    DvfsController,
    FixedOperatingPointController,
)
from repro.sim.engine import clamped_frequency_and_power
from repro.sim.result import SimulationResult

#: Decision-mode codes shared with :class:`SimulationResult` records.
M_REG: int = SimulationResult.MODE_CODES["regulated"]
M_BYP: int = SimulationResult.MODE_CODES["bypass"]
M_HALT: int = SimulationResult.MODE_CODES["halt"]

#: Mode-code -> mode-name (inverse of ``SimulationResult.MODE_CODES``).
MODE_NAMES: Dict[int, str] = {
    code: name for name, code in SimulationResult.MODE_CODES.items()
}

#: Vectorization family -> the controller class whose ``decide`` the
#: family's skip predicate describes.  A lane is only classified into
#: a family when its controller is an instance of the base class *and*
#: has not overridden ``decide`` (a subclass with custom behaviour
#: must fall back).
FAMILY_BASES: Dict[str, type] = {
    "fixed": FixedOperatingPointController,
    "constant_speed": ConstantSpeedController,
    "bypass": BypassController,
    "duty_cycle": DutyCycleController,
    "mppt": MppTrackingController,
    "plan": PlanController,
    "receding": RecedingHorizonController,
}

#: Stable family -> small-int code for :class:`FleetState` snapshots.
FAMILY_CODES: Dict[str, int] = {
    name: code for code, name in enumerate(sorted(FAMILY_BASES))
}

#: ``FleetState.control_family`` code for scalar-fallback lanes.
FALLBACK_FAMILY: int = -1

#: Families whose controllers can emit bypass decisions (and hence
#: need the processor models evaluated at the node voltage).
_BYPASS_CAPABLE = frozenset(
    ("bypass", "duty_cycle", "mppt", "plan", "receding")
)

# Per-lane resolution classes (what resolve_decision collapses to
# between real decide calls).
K_HALT0 = 0  # halt decision: (0, 0, 0, 0, halt)
K_CONSTHALT = 1  # constant (v_out, 0, 0, 0, halt) every step
K_REG = 2  # regulated: per-step switched-capacitor band scan
K_BYP = 3  # bypass: per-step processor evaluation at the node voltage
K_LAZY = 4  # planner action not yet constructed (energy gate closed)

# Duty-cycle mirror states.
DU_IDLE = 0
DU_RUNNING = 1
DU_PAUSED = 2

#: Relative guard band around the planner energy gate inside which the
#: scalar expression is re-evaluated per lane.  The vectorized
#: approximation (``v * v`` instead of python ``v ** 2``) differs by
#: at most a few ulps (~1e-16 relative); 1e-9 is millions of ulps of
#: margin while still resolving almost every lane without python.
_GATE_GUARD = 1e-9


def _share_key(obj: Any) -> Any:
    """Grouping key for value-identical model objects.

    Prefers the content fingerprint (so distinct-but-equal models share
    caches and band tables); falls back to object identity, which is
    always safe, when the object is not fingerprintable.
    """
    try:
        return stable_fingerprint(obj)
    except (ModelParameterError, TypeError, ValueError):
        return f"id:{id(obj)}"


def shared_decision_caches(
    processors: Sequence[ProcessorModel],
) -> "list[dict[tuple[float, float], tuple[float, float]]]":
    """One decision memo per *distinct* processor model.

    The scalar engine keeps a per-run ``(v_eval, commanded_hz) ->
    (f, p_proc)`` memo; the mapping is a pure function of the
    processor model, so lanes whose processors share a
    :func:`~repro.parallel.ids.stable_fingerprint` can share one memo.
    Sharing only changes hit rates, never values, so it is
    value-transparent to the bit-identity contract.
    """
    by_key: "dict[Any, dict[tuple[float, float], tuple[float, float]]]" = {}
    out: "list[dict[tuple[float, float], tuple[float, float]]]" = []
    for processor in processors:
        out.append(by_key.setdefault(_share_key(processor), {}))
    return out


def classify_controller(
    controller: DvfsController,
    processor: ProcessorModel,
    regulator: "Regulator | None",
    has_transitions: bool,
) -> "str | None":
    """The lane's vectorization family, or ``None`` for scalar fallback.

    A lane vectorizes only when every assumption the family's skip
    predicate and vector resolution rely on is verified:

    * the controller class declares the family tag, is an instance of
      the family base, and has not overridden ``decide``;
    * the lane has no DVFS transition model (transition bookkeeping is
      inherently per-lane sequential);
    * non-bypass families run exactly
      :class:`SwitchedCapacitorRegulator` (the only regulator whose
      band scan is hoisted into a table);
    * bypass-capable families need the frequency model defined down to
      ``min_operating_v`` so group evaluation can pad inactive lanes
      with an in-range voltage;
    * integer cycle counts must survive the float mirror exactly.
    """
    family = getattr(type(controller), "VECTOR_FAMILY", None)
    if family is None or has_transitions:
        return None
    base = FAMILY_BASES.get(family)
    if base is None or not isinstance(controller, base):
        return None
    if type(controller).decide is not base.decide:
        return None
    if family != "bypass" and type(regulator) is not SwitchedCapacitorRegulator:
        return None
    if family in _BYPASS_CAPABLE and (
        processor.frequency.min_voltage_v > processor.min_operating_v
    ):
        return None
    if family == "constant_speed":
        total = cast(ConstantSpeedController, controller).total_cycles
        if float(total) != total:
            return None
    elif family == "duty_cycle":
        per_job = cast(DutyCycleController, controller).cycles_per_job
        if float(per_job) != per_job:
            return None
    elif family in ("plan", "receding"):
        plan_total = cast(PlanController, controller).total_cycles
        if plan_total is not None and float(plan_total) != plan_total:
            return None
    return family


class ScBandTable:
    """Precomputed switched-capacitor band scan for one band plan.

    Mirrors :meth:`SwitchedCapacitorRegulator.band_plan` constants and
    replays ``_best_band`` as masked array operations in the *exact*
    scalar expression order, so the winning band's input power (and
    hence every downstream float) is bit-identical by construction.
    Lanes whose regulators share a band plan share one table.
    """

    def __init__(self, plan: ScBandPlan) -> None:
        self.plan = plan
        self.ratios: "tuple[float, ...]" = plan.ratios
        self.switching_drop_v = plan.switching_drop_v
        self.fixed_loss_w = plan.fixed_loss_w
        self.fixed_reference_v = plan.fixed_loss_reference_v
        self.output_impedance_ohm = plan.output_impedance_ohm
        self.min_output_v = plan.min_output_v
        self.max_output_v = plan.max_output_v
        self.efficiency_derating = plan.efficiency_derating

    def scan(
        self,
        v_in: np.ndarray,
        v_out: np.ndarray,
        i_out: np.ndarray,
        switching_w: np.ndarray,
        i_threshold: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(feasible, input_power_w)`` of the best band per lane.

        ``switching_w`` and ``i_threshold`` (``i_out`` minus the
        feasibility tolerance) are per-lane constants precomputed from
        the regulated setpoint; ``v_in`` is the live node voltage.
        Infeasible lanes (no band, or a non-positive input voltage)
        report ``feasible=False`` -- the scalar path's
        ``OperatingRangeError -> halt`` degradation.
        """
        ratio_q = v_in / self.fixed_reference_v
        fixed_w = self.fixed_loss_w * ratio_q * ratio_q
        best = np.full(v_in.shape, np.inf)
        for ratio_f in self.ratios:
            v_no_load = ratio_f * v_in
            headroom = v_no_load - v_out
            current_limit = np.where(
                headroom > 0.0, headroom / self.output_impedance_ohm, 0.0
            )
            usable = (current_limit >= i_threshold) & (v_no_load > v_out)
            p_in = v_no_load * i_out + switching_w + fixed_w
            take = usable & (p_in < best)
            best = np.where(take, p_in, best)
        feasible = (best < np.inf) & (v_in > 0.0)
        p_draw = np.where(feasible, best / self.efficiency_derating, 0.0)
        return feasible, p_draw


class ControlPlane:
    """Batched decision path for the vectorizable lanes of a fleet.

    Constructed once per run over the classified (fast) lanes, after
    controller resets.  All arrays are indexed by *fast position* --
    the order of ``master_index`` -- not by master lane index.
    """

    def __init__(
        self,
        master_index: Sequence[int],
        families: Sequence[str],
        controllers: Sequence[DvfsController],
        processors: Sequence[ProcessorModel],
        regulators: Sequence["Regulator | None"],
        caches: Sequence["dict[tuple[float, float], tuple[float, float]]"],
    ) -> None:
        n = len(master_index)
        self.n = n
        self.master_index = list(master_index)
        self.families = list(families)
        self._controllers = list(controllers)
        self._processors = list(processors)
        self._caches = list(caches)

        def positions(*names: str) -> np.ndarray:
            return np.array(
                [k for k, fam in enumerate(self.families) if fam in names],
                dtype=np.intp,
            )

        self.cs_pos = positions("constant_speed")
        self.du_pos = positions("duty_cycle")
        self.mp_pos = positions("mppt")
        self.pl_pos = positions("plan", "receding")
        #: Lanes forced through a real ``decide`` at step 0 (every
        #: family except bypass, whose law is evaluated per step).
        self.m_force0 = np.array(
            [fam != "bypass" for fam in self.families], dtype=bool
        )

        # -- decision state (what resolve_decision collapses to) ------
        self.res_kind = np.zeros(n, dtype=np.int8)
        self.dec_f = np.zeros(n)
        self.dec_mode = np.full(n, M_HALT, dtype=np.int8)
        self.byp_cmd = np.zeros(n)
        self.rs_vout = np.zeros(n)
        self.rs_f = np.zeros(n)
        self.rs_pproc = np.zeros(n)
        self.rs_iout = np.zeros(n)
        self.rs_sw = np.zeros(n)
        self.rs_ithresh = np.zeros(n)

        # -- constant-speed mirror ------------------------------------
        self.cs_total = np.full(n, np.nan)
        self.cs_done = np.zeros(n, dtype=bool)

        # -- duty-cycle mirror ----------------------------------------
        self.du_state = np.zeros(n, dtype=np.int8)
        self.du_start = np.zeros(n)
        self.du_cpj = np.full(n, np.nan)
        self.du_abort = np.full(n, np.nan)
        self.du_resume = np.full(n, np.nan)
        self.du_startv = np.full(n, np.nan)

        # -- MPPT trigger mirror --------------------------------------
        self.mp_settle = np.full(n, np.nan)
        self.mp_last_retune = np.zeros(n)
        self.mp_up = np.full(n, np.inf)
        self.mp_down = np.full(n, -np.inf)
        self.mp_pair = np.zeros(n, dtype=bool)
        self.mp_seen = np.zeros(n, dtype=np.int64)

        # -- plan-follower mirror -------------------------------------
        self.pl_start = np.full(n, np.nan)
        self.pl_slot_s = np.full(n, np.nan)
        self.pl_slots_m1 = np.full(n, np.nan)
        self.pl_total = np.full(n, np.nan)
        self.pl_deadline = np.full(n, np.nan)
        self.pl_miss = np.zeros(n, dtype=bool)
        self.pl_slot = np.full(n, np.nan)
        self.pl_min_e = np.full(n, np.nan)
        self.pl_hc_arr = np.zeros(n)
        self._pl_hc: "list[float]" = [0.0] * n
        self._pl_min_e: "list[float]" = [0.0] * n
        self._pl_action: "list[PlannerAction | None]" = [None] * n
        self._pl_workdone = np.zeros(n, dtype=bool)

        byp_laws: "list[tuple[int, Callable[[float], float]]]" = []
        for k, fam in enumerate(self.families):
            ctl = self._controllers[k]
            if fam == "constant_speed":
                cs = cast(ConstantSpeedController, ctl)
                self.cs_total[k] = float(cs.total_cycles)
            elif fam == "duty_cycle":
                du = cast(DutyCycleController, ctl)
                self.du_cpj[k] = float(du.cycles_per_job)
                self.du_abort[k] = du.abort_below_v
                self.du_resume[k] = du.abort_below_v + du.RESUME_HYSTERESIS_V
                self.du_startv[k] = du.start_above_v
            elif fam == "mppt":
                mp = cast(MppTrackingController, ctl)
                self.mp_settle[k] = mp.settle_time_s
            elif fam in ("plan", "receding"):
                pf = cast(PlanController, ctl)
                start_s, slot_s, slots = pf.vector_geometry()
                self.pl_start[k] = start_s
                self.pl_slot_s[k] = slot_s
                self.pl_slots_m1[k] = float(slots - 1)
                if pf.total_cycles is not None:
                    self.pl_total[k] = float(pf.total_cycles)
                    if pf.deadline_s is not None:
                        self.pl_deadline[k] = pf.deadline_s
                hold = 0.5 * pf.capacitance_f
                self._pl_hc[k] = hold
                self.pl_hc_arr[k] = hold
            elif fam == "bypass":
                self.res_kind[k] = K_BYP
                self.dec_mode[k] = M_BYP
                byp_laws.append(
                    (k, cast(BypassController, ctl).frequency_law)
                )
        self._byp_laws = byp_laws

        # -- static resolution groups ---------------------------------
        # Switched-capacitor band tables, shared across lanes whose
        # regulators reduce to the same (hashable) band plan.
        self._tables: "list[ScBandTable | None]" = [None] * n
        table_of: "dict[ScBandPlan, ScBandTable]" = {}
        sc_members: "dict[ScBandPlan, list[int]]" = {}
        for k, fam in enumerate(self.families):
            if fam == "bypass":
                continue
            regulator = cast(SwitchedCapacitorRegulator, regulators[k])
            plan = regulator.band_plan()
            table = table_of.get(plan)
            if table is None:
                table = ScBandTable(plan)
                table_of[plan] = table
            self._tables[k] = table
            sc_members.setdefault(plan, []).append(k)
        self._sc_groups: "list[tuple[ScBandTable, np.ndarray]]" = [
            (table_of[plan], np.array(members, dtype=np.intp))
            for plan, members in sc_members.items()
        ]
        # Bypass evaluation groups, shared across value-identical
        # processor models.
        byp_members: "dict[Any, list[int]]" = {}
        byp_proc: "dict[Any, ProcessorModel]" = {}
        for k, fam in enumerate(self.families):
            if fam in _BYPASS_CAPABLE:
                key = _share_key(self._processors[k])
                byp_members.setdefault(key, []).append(k)
                byp_proc.setdefault(key, self._processors[k])
        self._byp_groups: "list[tuple[ProcessorModel, np.ndarray]]" = [
            (byp_proc[key], np.array(members, dtype=np.intp))
            for key, members in byp_members.items()
        ]

    # -- skip predicates ----------------------------------------------

    def decision_flags(
        self,
        step: int,
        time_s: float,
        v: np.ndarray,
        v_prev: np.ndarray,
        cycles: np.ndarray,
        recovering: np.ndarray,
        brownouts: np.ndarray,
        pending: np.ndarray,
    ) -> np.ndarray:
        """Which fast lanes need a real ``decide`` call this step.

        Each family's expression reproduces the trigger conditions of
        its controller's ``decide`` exactly (see the controller seams:
        ``vector_state`` / ``vector_triggers``).  A flagged lane gets
        a real call; an unflagged lane's ``decide`` is provably a
        no-op returning the mirrored decision.  The caller masks the
        result with lane liveness.
        """
        pos = self.pl_pos
        if pos.size:
            # Stash work-done every step: resolve() overlays a halt on
            # finished plan lanes exactly like the scalar early-out.
            self._pl_workdone[pos] = cycles[pos] >= self.pl_total[pos]
        if step == 0:
            return self.m_force0.copy()
        need = np.zeros(self.n, dtype=bool)
        pos = self.cs_pos
        if pos.size:
            need[pos] = ~self.cs_done[pos] & (
                cycles[pos] >= self.cs_total[pos]
            )
        pos = self.du_pos
        if pos.size:
            v_du = v[pos]
            state = self.du_state[pos]
            job_done = (cycles[pos] - self.du_start[pos]) >= self.du_cpj[pos]
            running_trip = job_done | (v_du <= self.du_abort[pos])
            paused_trip = job_done | (v_du >= self.du_resume[pos])
            idle_trip = v_du >= self.du_startv[pos]
            need[pos] = np.where(
                state == DU_RUNNING,
                running_trip,
                np.where(state == DU_PAUSED, paused_trip, idle_trip),
            )
        pos = self.mp_pos
        if pos.size:
            v_mp = v[pos]
            settled = (time_s - self.mp_last_retune[pos]) >= self.mp_settle[
                pos
            ]
            probe_down = (v_mp < self.mp_down[pos]) & (
                v_mp <= v_prev[pos] + 1e-6
            )
            retune = settled & (
                self.mp_pair[pos] | (v_mp > self.mp_up[pos]) | probe_down
            )
            need[pos] = (
                recovering[pos]
                | pending[pos]
                | (brownouts[pos] > self.mp_seen[pos])
                | retune
            )
        pos = self.pl_pos
        if pos.size:
            raw = np.trunc((time_s - self.pl_start[pos]) / self.pl_slot_s[pos])
            slot_now = np.minimum(
                np.maximum(raw, 0.0), self.pl_slots_m1[pos]
            )
            workdone = self._pl_workdone[pos]
            deadline_fire = (
                ~self.pl_miss[pos]
                & (time_s > self.pl_deadline[pos])
                & (cycles[pos] < self.pl_total[pos])
            )
            need[pos] = (
                ~workdone & (slot_now != self.pl_slot[pos])
            ) | deadline_fire
        return need

    # -- per-step bypass commands -------------------------------------

    def bypass_commands(self, v: np.ndarray, alive: np.ndarray) -> None:
        """Evaluate bypass-family frequency laws for this step.

        The law is an arbitrary (possibly stateful) callable, so it is
        called exactly once per alive lane per step in ascending lane
        order -- the same call sequence the scalar engine makes.
        """
        for k, law in self._byp_laws:
            if alive[k]:
                cmd = max(0.0, float(law(float(v[k]))))
                self.byp_cmd[k] = cmd
                self.dec_f[k] = cmd

    # -- refresh after a real decide call -----------------------------

    def refresh(
        self, k: int, decision: ControlDecision, node_voltage_v: float
    ) -> None:
        """Re-mirror lane ``k`` after a real ``decide`` call."""
        family = self.families[k]
        if family == "constant_speed":
            self.cs_done[k] = decision.frequency_hz == 0.0
        elif family == "duty_cycle":
            du = cast(DutyCycleController, self._controllers[k])
            running, paused, start_cycles = du.vector_state()
            if running:
                self.du_state[k] = DU_PAUSED if paused else DU_RUNNING
            else:
                self.du_state[k] = DU_IDLE
            self.du_start[k] = start_cycles
        elif family == "mppt":
            mp = cast(MppTrackingController, self._controllers[k])
            snap = mp.vector_triggers()
            self.mp_last_retune[k] = snap.last_retune_s
            self.mp_up[k] = snap.probe_up_threshold_v
            self.mp_down[k] = snap.probe_down_threshold_v
            self.mp_pair[k] = snap.pair_ready
            self.mp_seen[k] = snap.brownouts_seen
        elif family in ("plan", "receding"):
            self._refresh_planner(k, decision, node_voltage_v)
            return
        self._refresh_decision(k, decision)

    def _refresh_planner(
        self, k: int, decision: ControlDecision, node_voltage_v: float
    ) -> None:
        follower = cast(PlanController, self._controllers[k])
        miss_counted, slot, action = follower.vector_state()
        self.pl_miss[k] = miss_counted
        self.pl_slot[k] = float("nan") if slot is None else float(slot)
        self._pl_action[k] = action
        if bool(self._pl_workdone[k]):
            # The follower returned its sticky halt without touching
            # the slot; resolve() overlays the halt from the mirror.
            self.res_kind[k] = K_HALT0
            self.dec_f[k] = 0.0
            self.dec_mode[k] = M_HALT
            return
        if action is None or action.mode == "halt":
            self.pl_min_e[k] = float("nan")
            self._refresh_decision(k, decision)
            return
        min_e = action.min_energy_j
        self._pl_min_e[k] = min_e
        self.pl_min_e[k] = min_e
        gated = min_e > 0.0 and (
            self._pl_hc[k] * (node_voltage_v**2) < min_e
        )
        if gated:
            # The action decision is only ever *constructed* on a
            # gate-open step; defer so any validation error raises on
            # exactly the step the scalar path would raise.
            self.res_kind[k] = K_LAZY
            self.dec_f[k] = action.frequency_hz
            self.dec_mode[k] = M_BYP if action.mode == "bypass" else M_REG
            return
        self._refresh_decision(k, decision)

    def _refresh_decision(self, k: int, decision: ControlDecision) -> None:
        """Collapse a (constant) decision into its resolution record.

        Follows :func:`~repro.sim.engine.resolve_decision` branch by
        branch; anything that path would raise on its first evaluation
        (which is this call, since the decision is constant until the
        next refresh) is deliberately allowed to propagate.
        """
        self.dec_f[k] = decision.frequency_hz
        if decision.mode == "halt":
            self.res_kind[k] = K_HALT0
            self.dec_mode[k] = M_HALT
            return
        if decision.mode == "bypass":
            self.res_kind[k] = K_BYP
            self.dec_mode[k] = M_BYP
            self.byp_cmd[k] = decision.frequency_hz
            return
        self.dec_mode[k] = M_REG
        processor = self._processors[k]
        v_out = decision.output_voltage_v
        assert v_out is not None  # regulated decisions validate this
        self.rs_vout[k] = v_out
        if v_out < processor.min_operating_v:
            self.res_kind[k] = K_CONSTHALT
            return
        f, p_proc = clamped_frequency_and_power(
            processor, v_out, decision.frequency_hz, self._caches[k]
        )
        table = self._tables[k]
        assert table is not None  # regulated lanes always carry a table
        if not table.min_output_v <= v_out <= table.max_output_v:
            # check_output_voltage raises on every step; the scalar
            # path degrades that to a constant halt at v_out.
            self.res_kind[k] = K_CONSTHALT
            return
        self.res_kind[k] = K_REG
        i_out = p_proc / v_out if v_out > 0.0 else 0.0
        self.rs_f[k] = f
        self.rs_pproc[k] = p_proc
        self.rs_iout[k] = i_out
        self.rs_sw[k] = table.switching_drop_v * i_out
        self.rs_ithresh[k] = i_out - (1e-9 + 1e-9 * i_out)

    # -- planner energy gate ------------------------------------------

    def _planner_gate(self, v: np.ndarray, alive: np.ndarray) -> np.ndarray:
        """Which plan lanes the ``CV^2/2`` energy gate closes this step.

        The scalar gate is ``0.5*C * (v ** 2) < min_e`` with python's
        libm ``pow``; ``v * v`` can differ from ``v ** 2`` by a few
        ulps, so the vectorized form only decides lanes safely outside
        a guard band and re-runs the scalar expression for the rest.
        """
        gated = np.zeros(self.n, dtype=bool)
        pos = self.pl_pos
        candidate = pos[
            alive[pos]
            & ~self._pl_workdone[pos]
            & (self.res_kind[pos] != K_HALT0)
            & (self.pl_min_e[pos] > 0.0)
        ]
        if candidate.size == 0:
            return gated
        v_g = v[candidate]
        approx = self.pl_hc_arr[candidate] * (v_g * v_g)
        min_e = self.pl_min_e[candidate]
        surely_gated = approx < min_e * (1.0 - _GATE_GUARD)
        surely_open = approx > min_e * (1.0 + _GATE_GUARD)
        gated[candidate[surely_gated]] = True
        for k in candidate[~surely_gated & ~surely_open]:
            kk = int(k)
            gated[kk] = (
                self._pl_hc[kk] * (float(v[kk]) ** 2) < self._pl_min_e[kk]
            )
        return gated

    def _resolve_lazy(self, k: int) -> None:
        """Construct a deferred planner action decision (gate open)."""
        action = self._pl_action[k]
        assert action is not None  # K_LAZY is only set with an action
        if action.mode == "bypass":
            decision = ControlDecision(
                mode="bypass", frequency_hz=action.frequency_hz
            )
        else:
            decision = ControlDecision(
                mode="regulated",
                frequency_hz=action.frequency_hz,
                output_voltage_v=action.processor_voltage_v,
            )
        self._refresh_decision(k, decision)

    # -- vector resolution --------------------------------------------

    def resolve(
        self, v: np.ndarray, alive: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Batched ``resolve_decision`` over the fast lanes.

        Returns ``(v_proc, f, p_proc, p_draw, mode, decided_f,
        decided_mode)`` where the last two are the *effective* decision
        (after the planner halt overlay) feeding the engine's stall
        detection.  Dead lanes produce don't-care values.
        """
        n = self.n
        kind = self.res_kind
        decided_f = self.dec_f
        decided_mode = self.dec_mode
        if self.pl_pos.size:
            gated = self._planner_gate(v, alive)
            if np.any(kind == K_LAZY):
                for k in np.nonzero(kind == K_LAZY)[0]:
                    kk = int(k)
                    if (
                        alive[kk]
                        and not self._pl_workdone[kk]
                        and not gated[kk]
                    ):
                        self._resolve_lazy(kk)
            halt_over = self._pl_workdone | gated
            if np.any(halt_over):
                kind = np.where(halt_over, K_HALT0, self.res_kind).astype(
                    np.int8
                )
                decided_f = np.where(halt_over, 0.0, self.dec_f)
                decided_mode = np.where(
                    halt_over, M_HALT, self.dec_mode
                ).astype(np.int8)
        v_proc = np.zeros(n)
        f = np.zeros(n)
        p_proc = np.zeros(n)
        p_draw = np.zeros(n)
        mode = np.full(n, M_HALT, dtype=np.int8)
        const_halt = kind == K_CONSTHALT
        if np.any(const_halt):
            v_proc[const_halt] = self.rs_vout[const_halt]
        for table, members in self._sc_groups:
            sub = members[(kind[members] == K_REG) & alive[members]]
            if sub.size == 0:
                continue
            feasible, draw = table.scan(
                v[sub],
                self.rs_vout[sub],
                self.rs_iout[sub],
                self.rs_sw[sub],
                self.rs_ithresh[sub],
            )
            v_proc[sub] = self.rs_vout[sub]
            f[sub] = np.where(feasible, self.rs_f[sub], 0.0)
            p_proc[sub] = np.where(feasible, self.rs_pproc[sub], 0.0)
            p_draw[sub] = draw
            mode[sub] = np.where(feasible, M_REG, M_HALT).astype(np.int8)
        for processor, members in self._byp_groups:
            sub = members[(kind[members] == K_BYP) & alive[members]]
            if sub.size == 0:
                continue
            v_sub = v[sub]
            min_op = processor.min_operating_v
            running = v_sub >= min_op
            v_eval = np.where(
                running, np.minimum(v_sub, processor.max_operating_v), min_op
            )
            f_max = np.asarray(processor.max_frequency(v_eval))
            f_sub = np.minimum(self.byp_cmd[sub], f_max)
            p_sub = np.asarray(processor.power(v_eval, f_sub))
            v_proc[sub] = v_sub
            f[sub] = np.where(running, f_sub, 0.0)
            p_run = np.where(running, p_sub, 0.0)
            p_proc[sub] = p_run
            p_draw[sub] = p_run
            mode[sub] = np.where(running, M_BYP, M_HALT).astype(np.int8)
        return (v_proc, f, p_proc, p_draw, mode, decided_f, decided_mode)


class ComparatorLens:
    """Skip-predicate mirror for noiseless comparator banks.

    A noiseless comparator's next state transition is a pure function
    of its mirrored state and the trip thresholds, so the per-step
    ``bank.observe`` call can be skipped whenever no comparator in the
    bank could trip -- a no-op observe has no side effects.  Noisy
    banks are *not* served (their noise stream must advance every
    sample); the engine keeps per-step observes for those.
    """

    def __init__(
        self, positions: Sequence[int], banks: Sequence[ComparatorBank]
    ) -> None:
        count = len(positions)
        width = max((len(b.comparators) for b in banks), default=0)
        self.positions = np.array(positions, dtype=np.intp)
        self.banks = list(banks)
        # Padding cells keep state 0 with +/-inf thresholds: never trip.
        self.state = np.zeros((count, width), dtype=np.int8)
        self.fall = np.full((count, width), -np.inf)
        self.rise = np.full((count, width), np.inf)
        for row, bank in enumerate(self.banks):
            for col, comp in enumerate(bank.comparators):
                trip = comp.threshold_v + comp.offset_v
                self.state[row, col] = -1  # None: first sample latches
                self.fall[row, col] = trip - 0.5 * comp.hysteresis_v
                self.rise[row, col] = trip + 0.5 * comp.hysteresis_v

    def rows_to_observe(
        self, v: np.ndarray, alive: np.ndarray
    ) -> np.ndarray:
        """Rows whose bank must really observe this step's sample."""
        v_col = v[self.positions][:, None]
        could_trip = (
            (self.state == -1)
            | ((self.state == 1) & (v_col < self.fall))
            | ((self.state == 0) & (v_col > self.rise))
        )
        flagged = could_trip.any(axis=1) & alive[self.positions]
        return np.nonzero(flagged)[0]

    def refresh(self, row: int) -> None:
        """Re-mirror one bank's comparator states after an observe."""
        for col, comp in enumerate(self.banks[row].comparators):
            latched = comp.input_state
            self.state[row, col] = (
                -1 if latched is None else (1 if latched else 0)
            )
