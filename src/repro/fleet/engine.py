"""The batched (structure-of-arrays) fleet simulation engine.

:class:`FleetSimulator` advances ``B`` *independent* harvest-store-
compute nodes through one shared time grid.  The expensive physics --
the implicit single-diode PV solve and the capacitor integration -- run
as masked array updates across all live lanes per step.  The per-lane
decision path is split by the control plane
(:mod:`repro.fleet.control`): lanes whose controllers classify into a
vectorizable family advance through batched skip predicates and masked
array resolution (real ``decide`` calls only when the controller's own
trigger conditions fire); unknown controller subclasses and lanes with
DVFS transition models fall back to the scalar per-lane body, exactly
as in the scalar engine.

**The equivalence guarantee.**  Lane ``i`` of a fleet run is
bit-identical to a scalar :class:`~repro.sim.engine.TransientSimulator`
run of the same node: every float operation happens in the same order
on the same doubles (the batched Newton freezes each lane exactly where
the scalar iteration would return -- see :mod:`repro.fleet.pv` -- the
vectorised capacitor update preserves the scalar expression order, and
the control plane's vector resolution replays
:func:`repro.sim.engine.resolve_decision` expression by expression),
and skipped controller calls are provably no-ops.  ``tests/fleet/``
asserts this across the full scenario matrix; the differential harness
is the contract.

Masking semantics: a lane dies (``stop_on_brownout`` break,
``stop_on_completion`` break) by leaving the live mask -- its state
freezes at its own end step while surviving lanes march on, so lane
death never perturbs a neighbour (also a tested property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, cast

import numpy as np

from repro.errors import (
    ModelParameterError,
    OperatingRangeError,
    SimulationError,
)
from repro.core.mppt import MppTrackingController
from repro.fleet.control import (
    FALLBACK_FAMILY,
    FAMILY_CODES,
    M_HALT,
    MODE_NAMES,
    ComparatorLens,
    ControlPlane,
    classify_controller,
    shared_decision_caches,
)
from repro.fleet.pv import CellParams, batched_current
from repro.fleet.state import NO_MODE, FleetState
from repro.monitor.comparator import ComparatorBank
from repro.processor.energy import ProcessorModel
from repro.processor.workloads import Workload
from repro.pv.cell import SingleDiodeCell
from repro.pv.traces import IrradianceTrace
from repro.regulators.base import Regulator
from repro.sim.dvfs import ControllerView, DvfsController
from repro.sim.engine import (
    _IRR_PRECOMPUTE_MAX_SAMPLES,
    SimulationConfig,
    resolve_decision,
)
from repro.sim.result import SimulationResult
from repro.sim.transitions import DvfsTransitionModel
from repro.storage.capacitor import Capacitor
from repro.telemetry.profiling import PhaseTimer, Stopwatch
from repro.telemetry.session import NULL_TELEMETRY, Telemetry


@dataclass
class FleetNode:
    """One lane of a fleet: the same substrates a scalar run takes.

    ``telemetry`` is per-lane so each node's metric registry matches
    the scalar engine's per-run session exactly; ``seed`` is optional
    provenance (the campaign fault-draw seed) carried into
    :class:`~repro.fleet.state.FleetState`.
    """

    cell: SingleDiodeCell
    capacitor: Capacitor
    processor: ProcessorModel
    regulator: Regulator
    controller: DvfsController
    comparators: "ComparatorBank | None" = None
    workload: "Workload | None" = None
    transitions: "DvfsTransitionModel | None" = None
    telemetry: "Telemetry | None" = None
    seed: "int | None" = None


class FleetSimulator:
    """Simulate a batch of independent nodes on per-lane traces.

    Parameters
    ----------
    nodes:
        One :class:`FleetNode` per lane.
    config:
        Shared :class:`~repro.sim.engine.SimulationConfig` -- the fleet
        batches *homogeneous-config* shards.  ``fast_pv`` and
        ``pv_reference`` are rejected: the fleet always runs the exact
        batched solver (the approximate surface and the historical
        reference loop are scalar-engine benchmarking tools).
    telemetry:
        Optional *fleet-level* session for control-plane counters
        (``fleet.lanes``, ``fleet.lanes.vectorized``, ``fleet.lanes.
        fallback``, ``fleet.lanes.family.<name>``).  Per-lane sessions
        stay on the nodes so lane metrics remain bit-identical to
        scalar runs.
    """

    def __init__(
        self,
        nodes: Sequence[FleetNode],
        config: "SimulationConfig | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if not nodes:
            raise ModelParameterError("a fleet needs at least one node")
        self.nodes = list(nodes)
        self.config = config or SimulationConfig()
        if self.config.fast_pv or self.config.pv_reference:
            raise ModelParameterError(
                "the fleet engine always runs the exact batched solver; "
                "fast_pv/pv_reference are scalar-engine options"
            )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Populated by :meth:`run`; the end-of-run SoA snapshot.
        self.state: "FleetState | None" = None
        #: Populated by :meth:`run`; lane classification counts
        #: (``{"lanes", "vectorized", "fallback", "families"}``).
        self.control_summary: "Dict[str, object] | None" = None
        #: Optional per-phase wall profiler installed by benchmarks
        #: (see :class:`~repro.telemetry.profiling.PhaseTimer`).
        self.phase_timer: "PhaseTimer | None" = None

    # -- the run -------------------------------------------------------------

    def run(
        self,
        traces: Sequence[IrradianceTrace],
        duration_s: "float | None" = None,
    ) -> List[SimulationResult]:
        """Advance every lane over its trace; per-lane results in order.

        ``duration_s`` defaults to the (common) trace duration; lanes
        share one time grid, so heterogeneous trace durations require
        an explicit ``duration_s``.  Each lane's capacitor is mutated
        to its final voltage, as the scalar engine does.
        """
        nodes = self.nodes
        lanes = len(nodes)
        if len(traces) != lanes:
            raise ModelParameterError(
                f"got {len(traces)} traces for {lanes} nodes"
            )
        cfg = self.config
        dt = cfg.time_step_s
        if duration_s is None:
            durations = {trace.duration_s for trace in traces}
            if len(durations) != 1:
                raise ModelParameterError(
                    "lanes have different trace durations "
                    f"({sorted(durations)}); pass duration_s explicitly"
                )
            duration_s = durations.pop()
        if duration_s <= 0.0:
            raise ModelParameterError(
                f"duration must be positive, got {duration_s}"
            )
        steps = int(np.ceil(duration_s / dt))
        if steps > cfg.max_steps:
            raise SimulationError(
                f"{steps} steps exceed max_steps={cfg.max_steps}; "
                "raise time_step_s or max_steps"
            )

        for node in nodes:
            node.controller.reset()
            if node.comparators is not None:
                node.comparators.reset()

        # -- per-lane constants ---------------------------------------
        controllers = [node.controller for node in nodes]
        processors = [node.processor for node in nodes]
        regulators = [node.regulator for node in nodes]
        transitions = [node.transitions for node in nodes]
        comparators = [node.comparators for node in nodes]
        tels = [
            node.telemetry if node.telemetry is not None else NULL_TELEMETRY
            for node in nodes
        ]
        comparator_power = [
            node.comparators.total_power_w
            if node.comparators is not None
            else 0.0
            for node in nodes
        ]
        targets: "List[float | None]" = [
            node.workload.cycles if node.workload is not None else None
            for node in nodes
        ]
        # Fleet-level decision memo: lanes with fingerprint-identical
        # processors share one (v_eval, commanded_hz) cache (value-
        # transparent -- sharing changes hit rates, never values).
        caches: "List[Dict[Tuple[float, float], Tuple[float, float]]]" = (
            shared_decision_caches(processors)
        )

        # Batched PV when every lane is a plain SingleDiodeCell;
        # otherwise exact per-lane scalar solves (same fallback ladder
        # as the scalar engine).
        params = CellParams.from_cells([node.cell for node in nodes])
        scalar_solves = [
            getattr(node.cell, "current_scalar", None) for node in nodes
        ]

        # Per-lane irradiance, precomputed in one vectorised sweep per
        # trace when possible (bit-identical; see step_samples).
        irr_rows: "List[np.ndarray | None]" = []
        for trace in traces:
            row: "np.ndarray | None" = None
            if steps + 1 <= _IRR_PRECOMPUTE_MAX_SAMPLES:
                sampler = getattr(trace, "step_samples", None)
                if sampler is not None:
                    row = sampler(dt, steps)
            irr_rows.append(row)
        irr_mat: "np.ndarray | None" = None
        if all(row is not None for row in irr_rows):
            irr_mat = np.stack([row for row in irr_rows if row is not None])

        # -- control-plane classification -----------------------------
        # A lane vectorizes only when the batched PV solve and the
        # precomputed irradiance grid are available (the plane's step
        # arrays come from them) and the lane's controller/regulator
        # pass every classify_controller guard.
        vector_ready = params is not None and irr_mat is not None
        families: "List[str | None]" = []
        for i in range(lanes):
            family: "str | None" = None
            if vector_ready:
                family = classify_controller(
                    controllers[i],
                    processors[i],
                    regulators[i],
                    transitions[i] is not None,
                )
                if family is not None:
                    target = targets[i]
                    if target is not None and float(target) != target:
                        family = None  # float mirror would round
            families.append(family)
        fast_idx = [i for i, fam in enumerate(families) if fam is not None]
        slow_idx = [i for i, fam in enumerate(families) if fam is None]
        nf = len(fast_idx)
        family_counts: "Dict[str, int]" = {}
        for fam in families:
            if fam is not None:
                family_counts[fam] = family_counts.get(fam, 0) + 1
        self.control_summary = {
            "lanes": lanes,
            "vectorized": nf,
            "fallback": lanes - nf,
            "families": dict(sorted(family_counts.items())),
        }
        fleet_tel = self.telemetry
        fleet_tel.count("fleet.lanes", float(lanes))
        fleet_tel.count("fleet.lanes.vectorized", float(nf))
        fleet_tel.count("fleet.lanes.fallback", float(lanes - nf))
        for fam, fam_count in sorted(family_counts.items()):
            fleet_tel.count(f"fleet.lanes.family.{fam}", float(fam_count))

        # -- SoA electrical state and per-lane scratch ----------------
        v = np.array([node.capacitor.voltage_v for node in nodes])
        cap_c = np.array([node.capacitor.capacitance_f for node in nodes])
        cap_esr = np.array([node.capacitor.esr_ohm for node in nodes])
        cap_vmax = np.array([node.capacitor.max_voltage_v for node in nodes])
        cap_leak = np.array(
            [node.capacitor.leakage_current_a for node in nodes]
        )
        live = np.ones(lanes, dtype=bool)
        irr_col = np.zeros(lanes)
        i_net_arr = np.zeros(lanes)
        # Python-float mirrors of the hot per-lane reads: one tolist()
        # per step costs far less than per-lane numpy scalar indexing,
        # and float64 -> Python float is exact.  Only needed while
        # scalar-fallback lanes are alive.
        v_list: "list" = v.tolist()
        irr_pylists: "List[list | None]" = [
            row.tolist() if row is not None else None for row in irr_rows
        ]
        irr_steps: "np.ndarray | None" = (
            np.ascontiguousarray(irr_mat.T) if irr_mat is not None else None
        )

        record_count = steps // cfg.record_every + 1
        rec_t = np.empty((lanes, record_count))
        rec_vnode = np.empty((lanes, record_count))
        rec_vproc = np.empty((lanes, record_count))
        rec_f = np.empty((lanes, record_count))
        rec_ppv = np.empty((lanes, record_count))
        rec_pproc = np.empty((lanes, record_count))
        rec_pdraw = np.empty((lanes, record_count))
        rec_irr = np.empty((lanes, record_count))
        rec_mode = np.empty((lanes, record_count), dtype=np.int8)
        recorded = [0] * lanes

        mode_codes = SimulationResult.MODE_CODES

        # Per-lane loop state, exactly the scalar engine's locals.
        # Fast lanes keep the continuously-updated fields in the fleet
        # arrays below and sync these master lists at lane death and at
        # run end; fallback lanes use them directly every step.
        cycles = [0.0] * lanes
        prev_v_proc = [0.0] * lanes
        prev_mode: "List[str | None]" = [None] * lanes
        prev_setpoint_v = [0.0] * lanes
        lockout_until = [-1.0] * lanes
        transition_count = [0] * lanes
        pending_events: "List[tuple]" = [()] * lanes
        completed = [False] * lanes
        completion_time: "List[float | None]" = [None] * lanes
        browned_out = [False] * lanes
        brownout_time: "List[float | None]" = [None] * lanes
        brownout_count = [0] * lanes
        downtime_s = [0.0] * lanes
        recovering = [False] * lanes
        in_brownout = [False] * lanes
        node_collapsed = [False] * lanes
        telemetry_mode: "List[str | None]" = [None] * lanes
        outage_started_s: "List[float | None]" = [None] * lanes
        events: "List[list]" = [[] for _ in range(lanes)]
        end_step = [-1] * lanes
        end_time = [float("nan")] * lanes

        # -- control plane and fast-lane state arrays -----------------
        plane: "ControlPlane | None" = None
        lens: "ComparatorLens | None" = None
        noisy_banks: "List[Tuple[int, int, ComparatorBank]]" = []
        if nf:
            plane = ControlPlane(
                fast_idx,
                cast("List[str]", [families[i] for i in fast_idx]),
                [controllers[i] for i in fast_idx],
                [processors[i] for i in fast_idx],
                [regulators[i] for i in fast_idx],
                [caches[i] for i in fast_idx],
            )
            fidx = np.array(fast_idx, dtype=np.intp)
            faliveF = np.ones(nf, dtype=bool)
            cyclesF = np.zeros(nf)
            prev_vprocF = np.zeros(nf)
            tmodeF = np.full(nf, NO_MODE, dtype=np.int8)
            recoveringF = np.zeros(nf, dtype=bool)
            in_boF = np.zeros(nf, dtype=bool)
            completedF = np.zeros(nf, dtype=bool)
            collapsedF = np.zeros(nf, dtype=bool)
            downtimeF = np.zeros(nf)
            bocountF = np.zeros(nf, dtype=np.int64)
            v_prevF = v[fidx]
            pendF = np.zeros(nf, dtype=bool)
            targetF = np.array(
                [
                    np.nan if targets[i] is None else float(targets[i])
                    for i in fast_idx
                ]
            )
            has_targetF = ~np.isnan(targetF)
            comp_powF = np.array([comparator_power[i] for i in fast_idx])
            posF_alive = np.arange(nf)
            fidx_alive = fidx
            pend_rows: "List[int]" = []
            # Comparator service split: noiseless banks go through the
            # skip-predicate lens; noisy banks must observe every step
            # (their noise stream advances per sample).
            served_pos: "List[int]" = []
            served_banks: "List[ComparatorBank]" = []
            for pos_k, i in enumerate(fast_idx):
                bank = comparators[i]
                if bank is None:
                    continue
                if bank.noiseless:
                    served_pos.append(pos_k)
                    served_banks.append(bank)
                else:
                    noisy_banks.append((pos_k, i, bank))
            if served_pos:
                lens = ComparatorLens(served_pos, served_banks)

        watch = Stopwatch()
        for i in range(lanes):
            tels[i].begin_span(
                "engine.run", 0.0, track="engine",
                dt_s=dt, planned_steps=steps,
            )

        def finish_lane(i: int, lane_step: int, lane_t: float) -> None:
            """The scalar engine's after-loop telemetry, at lane end."""
            tel = tels[i]
            outage_start = outage_started_s[i]
            if outage_start is not None:
                tel.end_span(lane_t)
                tel.observe("brownout.outage_s", lane_t - outage_start)
            tel.end_span(lane_t, steps=float(lane_step + 1))
            tel.count("engine.steps", float(lane_step + 1))
            tel.gauge("brownout.downtime_s", downtime_s[i])
            tel.gauge("engine.final_cycles", float(cycles[i]))
            tel.profile("engine.run_wall_s", watch.elapsed_s())
            live[i] = False
            end_step[i] = lane_step
            end_time[i] = lane_t

        timer = self.phase_timer
        slow_alive = list(slow_idx)
        all_alive = True
        t = 0.0
        step = 0
        t_mark = 0.0
        for step in range(steps + 1):
            if timer is not None:
                t_mark = timer.mark()
            # One batched PV solve across all live lanes.
            i_pv_list: "list | None" = None
            i_pv_arr: "np.ndarray | None" = None
            if params is not None:
                if irr_steps is not None:
                    irr_arr = irr_steps[step]
                else:
                    for i in slow_alive:
                        pylist = irr_pylists[i]
                        irr_col[i] = (
                            pylist[step]
                            if pylist is not None
                            else traces[i](t)
                        )
                    irr_arr = irr_col
                i_pv_arr = batched_current(params, v, irr_arr, live)
                if slow_alive:
                    i_pv_list = i_pv_arr.tolist()
            if timer is not None:
                t_mark = timer.add("pv", t_mark)

            any_died = False

            # ---- vectorized control plane (classified lanes) --------
            if nf:
                assert plane is not None
                assert i_pv_arr is not None and irr_steps is not None
                vF = v[fidx]
                ipvF = i_pv_arr[fidx]
                ppvF = vF * ipvF
                irrF = irr_steps[step][fidx]

                # Power-good release (see the scalar engine).
                if recoveringF.any():
                    release = (
                        faliveF
                        & recoveringF
                        & (vF >= cfg.recovery_voltage_v)
                    )
                    for k in np.nonzero(release)[0]:
                        kk = int(k)
                        i = fast_idx[kk]
                        tel = tels[i]
                        recoveringF[kk] = False
                        v_node = float(vF[kk])
                        events[i].append(("recovered", t))
                        tel.event(
                            "recovered", t, track="engine", node_v=v_node
                        )
                        outage_start = outage_started_s[i]
                        if outage_start is not None:
                            tel.end_span(t)
                            tel.observe(
                                "brownout.outage_s", t - outage_start
                            )
                            outage_started_s[i] = None

                # Real decide calls only where the skip predicates fire.
                need = plane.decision_flags(
                    step, t, vF, v_prevF, cyclesF, recoveringF, bocountF,
                    pendF,
                )
                need &= faliveF
                if need.any():
                    for k in np.nonzero(need)[0]:
                        kk = int(k)
                        i = fast_idx[kk]
                        controller = controllers[i]
                        if step > 0 and families[i] == "mppt":
                            cast(
                                MppTrackingController, controller
                            ).sync_last_node_v(float(v_prevF[kk]))
                        v_node = float(vF[kk])
                        view = ControllerView(
                            time_s=t,
                            node_voltage_v=v_node,
                            processor_voltage_v=float(prev_vprocF[kk]),
                            cycles_done=float(cyclesF[kk]),
                            comparator_events=pending_events[i],
                            recovering=bool(recoveringF[kk]),
                            brownout_count=int(bocountF[kk]),
                        )
                        plane.refresh(kk, controller.decide(view), v_node)
                plane.bypass_commands(vF, faliveF)

                (
                    v_procF, fF, p_procF, p_drawF, modeF, dec_fF, dec_modeF,
                ) = plane.resolve(vF, faliveF)
                if recoveringF.any():
                    gate = recoveringF & faliveF
                    v_procF = np.where(gate, 0.0, v_procF)
                    fF = np.where(gate, 0.0, fF)
                    p_procF = np.where(gate, 0.0, p_procF)
                    p_drawF = np.where(gate, 0.0, p_drawF)
                    modeF = np.where(gate, M_HALT, modeF).astype(np.int8)
                prev_vprocF = np.where(faliveF, v_procF, prev_vprocF)

                # Converter-path mode switch telemetry.
                changed = faliveF & (modeF != tmodeF)
                if changed.any():
                    for k in np.nonzero(changed)[0]:
                        kk = int(k)
                        old_code = int(tmodeF[kk])
                        if old_code != NO_MODE:
                            i = fast_idx[kk]
                            tels[i].count("regulator.mode_switches")
                            tels[i].event(
                                "regulator.mode_switch", t, track="engine",
                                previous=MODE_NAMES[old_code],
                                new=MODE_NAMES[int(modeF[kk])],
                                node_v=float(vF[kk]),
                            )
                    tmodeF[changed] = modeF[changed]

                # Brownout: commanded work the supply cannot run.
                stalled = (
                    (dec_fF > 0.0)
                    & (fF == 0.0)
                    & (modeF == M_HALT)
                    & (dec_modeF != M_HALT)
                    & ~completedF
                    & ~recoveringF
                    & faliveF
                )
                entering = stalled & ~in_boF
                if entering.any():
                    for k in np.nonzero(entering)[0]:
                        kk = int(k)
                        i = fast_idx[kk]
                        tel = tels[i]
                        in_boF[kk] = True
                        browned_out[i] = True
                        bocountF[kk] += 1
                        brownout_count[i] += 1
                        if brownout_time[i] is None:
                            brownout_time[i] = t
                        events[i].append(("brownout", t))
                        tel.count("brownout.count")
                        tel.event(
                            "brownout", t, track="engine",
                            node_v=float(vF[kk]),
                        )
                        if cfg.stop_on_brownout:
                            if step % cfg.record_every == 0:
                                col = step // cfg.record_every
                                rec_t[i, col] = t
                                rec_vnode[i, col] = vF[kk]
                                rec_vproc[i, col] = v_procF[kk]
                                rec_f[i, col] = 0.0
                                rec_ppv[i, col] = ppvF[kk]
                                rec_pproc[i, col] = 0.0
                                rec_pdraw[i, col] = 0.0
                                rec_irr[i, col] = irrF[kk]
                                rec_mode[i, col] = mode_codes["halt"]
                                recorded[i] = col + 1
                            else:
                                recorded[i] = (
                                    (step - 1) // cfg.record_every + 1
                                )
                            cycles[i] = float(cyclesF[kk])
                            downtime_s[i] = float(downtimeF[kk])
                            finish_lane(i, step, t)
                            faliveF[kk] = False
                            any_died = True
                        elif cfg.recover_from_brownout:
                            recoveringF[kk] = True
                            if outage_started_s[i] is None:
                                tel.begin_span(
                                    "brownout.outage", t, track="engine"
                                )
                                outage_started_s[i] = t
                            v_procF[kk] = 0.0
                            fF[kk] = 0.0
                            p_procF[kk] = 0.0
                            p_drawF[kk] = 0.0
                            modeF[kk] = M_HALT
                            prev_vprocF[kk] = 0.0
                in_boF[(fF > 0.0) & faliveF] = False

                if step % cfg.record_every == 0:
                    if timer is not None:
                        t_mark = timer.add("control", t_mark)
                    col = step // cfg.record_every
                    if any_died:
                        sel = np.nonzero(faliveF)[0]
                        rows = fidx[sel]
                    else:
                        sel = posF_alive
                        rows = fidx_alive
                    rec_t[rows, col] = t
                    rec_vnode[rows, col] = vF[sel]
                    rec_vproc[rows, col] = v_procF[sel]
                    rec_f[rows, col] = fF[sel]
                    rec_ppv[rows, col] = ppvF[sel]
                    rec_pproc[rows, col] = p_procF[sel]
                    rec_pdraw[rows, col] = p_drawF[sel]
                    rec_irr[rows, col] = irrF[sel]
                    rec_mode[rows, col] = modeF[sel]
                    if timer is not None:
                        t_mark = timer.add("record", t_mark)

                if step < steps:
                    # Cycle bookkeeping and completion detection.
                    updatable = faliveF.copy()
                    new_cyclesF = cyclesF + fF * dt
                    completing = (
                        faliveF
                        & has_targetF
                        & ~completedF
                        & (new_cyclesF >= targetF)
                    )
                    if completing.any():
                        for k in np.nonzero(completing)[0]:
                            kk = int(k)
                            i = fast_idx[kk]
                            tel = tels[i]
                            completedF[kk] = True
                            completed[i] = True
                            target = targets[i]
                            f_py = float(fF[kk])
                            if f_py > 0.0:
                                crossed_t = (
                                    t + (target - float(cyclesF[kk])) / f_py
                                )
                            else:
                                crossed_t = t
                            completion_time[i] = crossed_t
                            events[i].append(("completed", crossed_t))
                            tel.event(
                                "workload.completed", crossed_t,
                                track="engine", cycles=float(target),
                            )
                            if cfg.stop_on_completion:
                                cycles[i] = float(new_cyclesF[kk])
                                downtime_s[i] = float(downtimeF[kk])
                                recorded[i] = step // cfg.record_every + 1
                                finish_lane(i, step, t)
                                faliveF[kk] = False
                                any_died = True
                    cyclesF = np.where(updatable, new_cyclesF, cyclesF)

                    idle = faliveF & (
                        recoveringF | (in_boF & (fF == 0.0))
                    )
                    downtimeF = np.where(idle, downtimeF + dt, downtimeF)

                    # Node demand; the capacitor integration is batched.
                    demandF = p_drawF + comp_powF
                    ok_v = vF > 1e-6
                    i_drawF = np.where(
                        ok_v, demandF / np.where(ok_v, vF, 1.0), 0.0
                    )
                    collapsedF = np.where(faliveF & ok_v, False, collapsedF)
                    collapsing = (
                        faliveF & ~ok_v & (demandF > 0.0) & ~collapsedF
                    )
                    if collapsing.any():
                        for k in np.nonzero(collapsing)[0]:
                            kk = int(k)
                            i = fast_idx[kk]
                            collapsedF[kk] = True
                            events[i].append(("node_collapse", t))
                            tels[i].event("node.collapse", t, track="engine")
                    # Dead lanes get don't-care values; the capacitor
                    # update never applies them (live mask).
                    i_net_arr[fidx] = ipvF - i_drawF
                if timer is not None:
                    t_mark = timer.add("control", t_mark)

            # ---- scalar fallback lanes ------------------------------
            for i in slow_alive:
                tel = tels[i]
                v_node = v_list[i]
                pylist = irr_pylists[i]
                irr = pylist[step] if pylist is not None else traces[i](t)

                if i_pv_list is not None:
                    i_pv = i_pv_list[i]
                    p_pv = v_node * i_pv
                else:
                    solve = scalar_solves[i]
                    if solve is not None:
                        i_pv = solve(v_node, irr)
                        p_pv = v_node * i_pv
                    else:
                        i_pv = 0.0
                        p_pv = 0.0

                # Power-good release (see the scalar engine).
                if recovering[i] and v_node >= cfg.recovery_voltage_v:
                    recovering[i] = False
                    events[i].append(("recovered", t))
                    tel.event("recovered", t, track="engine", node_v=v_node)
                    outage_start = outage_started_s[i]
                    if outage_start is not None:
                        tel.end_span(t)
                        tel.observe("brownout.outage_s", t - outage_start)
                        outage_started_s[i] = None

                view = ControllerView(
                    time_s=t,
                    node_voltage_v=v_node,
                    processor_voltage_v=prev_v_proc[i],
                    cycles_done=cycles[i],
                    comparator_events=pending_events[i],
                    recovering=recovering[i],
                    brownout_count=brownout_count[i],
                )
                decision = controllers[i].decide(view)
                v_proc, f, p_proc, p_draw, mode = resolve_decision(
                    processors[i], regulators[i], decision, v_node, caches[i]
                )
                if recovering[i]:
                    v_proc, f, p_proc, p_draw, mode = (
                        0.0, 0.0, 0.0, 0.0, "halt",
                    )
                prev_v_proc[i] = v_proc

                # DVFS transition accounting: settle lockout + recharge.
                tr = transitions[i]
                if tr is not None:
                    if tr.is_transition(
                        prev_mode[i], prev_setpoint_v[i], mode, v_proc
                    ):
                        transition_count[i] += 1
                        tel.count("dvfs.transitions")
                        tel.event(
                            "dvfs.transition", t, track="engine",
                            previous=prev_mode[i] or "", new=mode,
                            setpoint_v=v_proc,
                        )
                        lockout_until[i] = t + tr.settle_time_s
                        recharge = tr.transition_energy_j(
                            prev_setpoint_v[i], v_proc
                        )
                        if recharge > 0.0:
                            p_draw += recharge / dt
                    if mode != "halt":
                        prev_mode[i] = mode
                        prev_setpoint_v[i] = v_proc
                    if t < lockout_until[i] and f > 0.0:
                        f = 0.0
                        p_proc = (
                            float(processors[i].leakage.power(v_proc))
                            if v_proc >= processors[i].min_operating_v
                            else 0.0
                        )
                        if mode == "regulated":
                            try:
                                p_draw = max(
                                    p_draw,
                                    regulators[i].input_power(
                                        v_proc, p_proc, v_in=v_node
                                    ),
                                )
                            except OperatingRangeError:
                                pass
                        elif mode == "bypass":
                            p_draw = p_proc

                # Converter-path mode switch telemetry.
                if mode != telemetry_mode[i]:
                    if telemetry_mode[i] is not None:
                        tel.count("regulator.mode_switches")
                        tel.event(
                            "regulator.mode_switch", t, track="engine",
                            previous=telemetry_mode[i], new=mode,
                            node_v=v_node,
                        )
                    telemetry_mode[i] = mode

                # Brownout: commanded work the supply cannot run.
                stalled_lane = (
                    decision.frequency_hz > 0.0
                    and f == 0.0
                    and mode == "halt"
                    and decision.mode != "halt"
                    and not completed[i]
                    and not recovering[i]
                )
                if stalled_lane and not in_brownout[i]:
                    in_brownout[i] = True
                    browned_out[i] = True
                    brownout_count[i] += 1
                    if brownout_time[i] is None:
                        brownout_time[i] = t
                    events[i].append(("brownout", t))
                    tel.count("brownout.count")
                    tel.event("brownout", t, track="engine", node_v=v_node)
                    if cfg.stop_on_brownout:
                        if step % cfg.record_every == 0:
                            col = recorded[i]
                            rec_t[i, col] = t
                            rec_vnode[i, col] = v_node
                            rec_vproc[i, col] = v_proc
                            rec_f[i, col] = 0.0
                            rec_ppv[i, col] = (
                                p_pv
                                if params is not None
                                or scalar_solves[i] is not None
                                else float(nodes[i].cell.power(v_node, irr))
                            )
                            rec_pproc[i, col] = 0.0
                            rec_pdraw[i, col] = 0.0
                            rec_irr[i, col] = irr
                            rec_mode[i, col] = mode_codes["halt"]
                            recorded[i] = col + 1
                        finish_lane(i, step, t)
                        any_died = True
                        continue
                    if cfg.recover_from_brownout:
                        recovering[i] = True
                        if outage_started_s[i] is None:
                            tel.begin_span(
                                "brownout.outage", t, track="engine"
                            )
                            outage_started_s[i] = t
                        v_proc, f, p_proc, p_draw, mode = (
                            0.0, 0.0, 0.0, 0.0, "halt",
                        )
                        prev_v_proc[i] = 0.0
                elif f > 0.0:
                    in_brownout[i] = False

                if params is None and scalar_solves[i] is None:
                    p_pv = float(nodes[i].cell.power(v_node, irr))
                if step % cfg.record_every == 0:
                    col = recorded[i]
                    rec_t[i, col] = t
                    rec_vnode[i, col] = v_node
                    rec_vproc[i, col] = v_proc
                    rec_f[i, col] = f
                    rec_ppv[i, col] = p_pv
                    rec_pproc[i, col] = p_proc
                    rec_pdraw[i, col] = p_draw
                    rec_irr[i, col] = irr
                    rec_mode[i, col] = mode_codes[mode]
                    recorded[i] = col + 1

                if step == steps:
                    continue

                # Cycle bookkeeping and completion detection.
                target = targets[i]
                new_cycles = cycles[i] + f * dt
                if (
                    target is not None
                    and not completed[i]
                    and new_cycles >= target
                ):
                    completed[i] = True
                    if f > 0.0:
                        crossed_t = t + (target - cycles[i]) / f
                    else:
                        crossed_t = t
                    completion_time[i] = crossed_t
                    events[i].append(("completed", crossed_t))
                    tel.event(
                        "workload.completed", crossed_t,
                        track="engine", cycles=float(target),
                    )
                    if cfg.stop_on_completion:
                        cycles[i] = new_cycles
                        finish_lane(i, step, t)
                        any_died = True
                        continue
                cycles[i] = new_cycles

                if recovering[i] or (in_brownout[i] and f == 0.0):
                    downtime_s[i] += dt

                # Node demand; the capacitor integration is batched.
                if params is None and scalar_solves[i] is None:
                    i_pv = float(nodes[i].cell.current(v_node, irr))
                demand_w = p_draw + comparator_power[i]
                if v_node > 1e-6:
                    i_draw = demand_w / v_node
                    node_collapsed[i] = False
                else:
                    i_draw = 0.0
                    if demand_w > 0.0 and not node_collapsed[i]:
                        node_collapsed[i] = True
                        events[i].append(("node_collapse", t))
                        tel.event("node.collapse", t, track="engine")
                i_net_arr[i] = i_pv - i_draw

            if timer is not None and slow_alive:
                t_mark = timer.add("control", t_mark)

            if step == steps:
                break
            if any_died:
                slow_alive = [i for i in slow_alive if live[i]]
                if nf:
                    posF_alive = np.nonzero(faliveF)[0]
                    fidx_alive = fidx[posF_alive]
                all_alive = False
                if not live.any():
                    break

            # Masked capacitor update across all live lanes, preserving
            # the scalar expression order (leak subtraction only when
            # leaking and charged; left-associative V + (I*dt)/C; clamp
            # to [0, rating]).
            adj = np.where(
                (cap_leak > 0.0) & (v > 0.0), i_net_arr - cap_leak, i_net_arr
            )
            v_next = np.minimum(
                np.maximum(v + adj * dt / cap_c, 0.0), cap_vmax
            )
            if all_alive:
                if not np.all(np.isfinite(v_next)):
                    raise SimulationError(
                        f"node voltage became non-finite at t={t}"
                    )
                v = v_next
            else:
                if not np.all(np.isfinite(v_next[live])):
                    raise SimulationError(
                        f"node voltage became non-finite at t={t}"
                    )
                v[live] = v_next[live]
            if slow_alive:
                v_list = v.tolist()

            # Comparator observations feed the next step's views.
            for i in slow_alive:
                bank = comparators[i]
                if bank is not None:
                    pending_events[i] = tuple(
                        bank.observe(t + dt, v_list[i])
                    )
                else:
                    pending_events[i] = ()
            if nf:
                v_prevF = vF
                if pend_rows:
                    for kk in pend_rows:
                        pending_events[fast_idx[kk]] = ()
                    pendF[pend_rows] = False
                    pend_rows = []
                if lens is not None or noisy_banks:
                    vF_next = v[fidx]
                    if lens is not None:
                        for row in lens.rows_to_observe(vF_next, faliveF):
                            rr = int(row)
                            kk = int(lens.positions[rr])
                            i = fast_idx[kk]
                            bank = comparators[i]
                            assert bank is not None
                            new_events = bank.observe(
                                t + dt, float(vF_next[kk])
                            )
                            lens.refresh(rr)
                            if new_events:
                                pending_events[i] = tuple(new_events)
                                pendF[kk] = True
                                pend_rows.append(kk)
                    for kk, i, bank in noisy_banks:
                        if faliveF[kk]:
                            new_events = bank.observe(
                                t + dt, float(vF_next[kk])
                            )
                            if new_events:
                                pending_events[i] = tuple(new_events)
                                pendF[kk] = True
                                pend_rows.append(kk)
            if timer is not None:
                t_mark = timer.add("capacitor", t_mark)

            t += dt

        # Sync the fast lanes' continuously-updated state back into the
        # master per-lane lists (dead lanes were synced at death; their
        # arrays are frozen, so re-syncing is a no-op).
        if nf:
            for kk in range(nf):
                i = fast_idx[kk]
                cycles[i] = float(cyclesF[kk])
                prev_v_proc[i] = float(prev_vprocF[kk])
                downtime_s[i] = float(downtimeF[kk])
                recovering[i] = bool(recoveringF[kk])
                in_brownout[i] = bool(in_boF[kk])
                node_collapsed[i] = bool(collapsedF[kk])
                brownout_count[i] = int(bocountF[kk])
                tmode_code = int(tmodeF[kk])
                telemetry_mode[i] = (
                    None if tmode_code == NO_MODE else MODE_NAMES[tmode_code]
                )
                if live[i]:
                    recorded[i] = step // cfg.record_every + 1

        # Lanes that reached the end of the grid finish here, exactly
        # like the scalar engine's after-loop block.
        for i in range(lanes):
            if live[i]:
                finish_lane(i, step, t)

        # Final capacitor write-back (the scalar engine mutates its
        # capacitor in place throughout; the fleet defers to the end).
        for i in range(lanes):
            nodes[i].capacitor.charge(float(v[i]))

        self.state = FleetState(
            time_s=t,
            step=step,
            node_voltage_v=v.copy(),
            processor_voltage_v=np.array(prev_v_proc),
            cycles_done=np.array(cycles),
            prev_setpoint_v=np.array(prev_setpoint_v),
            lockout_until_s=np.array(lockout_until),
            downtime_s=np.array(downtime_s),
            completion_time_s=np.array(
                [
                    float("nan") if value is None else value
                    for value in completion_time
                ]
            ),
            brownout_time_s=np.array(
                [
                    float("nan") if value is None else value
                    for value in brownout_time
                ]
            ),
            outage_started_s=np.array(
                [
                    float("nan") if value is None else value
                    for value in outage_started_s
                ]
            ),
            end_time_s=np.array(end_time),
            prev_mode=np.array(
                [
                    NO_MODE if name is None else mode_codes[name]
                    for name in prev_mode
                ],
                dtype=np.int8,
            ),
            telemetry_mode=np.array(
                [
                    NO_MODE if name is None else mode_codes[name]
                    for name in telemetry_mode
                ],
                dtype=np.int8,
            ),
            transition_count=np.array(transition_count, dtype=np.int64),
            brownout_count=np.array(brownout_count, dtype=np.int64),
            end_step=np.array(end_step, dtype=np.int64),
            completed=np.array(completed, dtype=bool),
            browned_out=np.array(browned_out, dtype=bool),
            recovering=np.array(recovering, dtype=bool),
            in_brownout=np.array(in_brownout, dtype=bool),
            node_collapsed=np.array(node_collapsed, dtype=bool),
            live=live.copy(),
            control_family=np.array(
                [
                    FALLBACK_FAMILY if fam is None else FAMILY_CODES[fam]
                    for fam in families
                ],
                dtype=np.int8,
            ),
            capacitance_f=cap_c.copy(),
            esr_ohm=cap_esr.copy(),
            max_voltage_v=cap_vmax.copy(),
            leakage_current_a=cap_leak.copy(),
            seeds=np.array(
                [
                    -1 if node.seed is None else node.seed
                    for node in nodes
                ],
                dtype=np.int64,
            ),
        )

        results: List[SimulationResult] = []
        for i in range(lanes):
            n = recorded[i]
            result = SimulationResult(
                time_s=rec_t[i, :n].copy(),
                node_voltage_v=rec_vnode[i, :n].copy(),
                processor_voltage_v=rec_vproc[i, :n].copy(),
                frequency_hz=rec_f[i, :n].copy(),
                harvest_power_w=rec_ppv[i, :n].copy(),
                processor_power_w=rec_pproc[i, :n].copy(),
                draw_power_w=rec_pdraw[i, :n].copy(),
                irradiance=rec_irr[i, :n].copy(),
                mode=rec_mode[i, :n].copy(),
                completed=completed[i],
                completion_time_s=completion_time[i],
                browned_out=browned_out[i],
                brownout_time_s=brownout_time[i],
                brownout_count=brownout_count[i],
                downtime_s=downtime_s[i],
                final_cycles=cycles[i],
                events=events[i],
                metrics=tels[i].result_metrics(),
            )
            result.events.extend(
                [("transitions", float(transition_count[i]))]
                if transitions[i] is not None
                else []
            )
            results.append(result)
        return results
