"""Aggregate steps/s benchmark: fleet engine vs N scalar runs.

Times the Fig. 8 MPPT closed loop (full DVFS controller, comparator
bank, SC regulator -- the same representative scenario as the engine
hot-path bench) at batch sizes 1/16/128/1024: each batch size B is
simulated once through :class:`~repro.fleet.engine.FleetSimulator` and
once as B independent scalar runs, and the report records the
*aggregate* steps/s (B x steps / wall) for both.

Honest numbers, like the other benches: wall time is the best of
``rounds`` timed passes after an untimed warm-up, batch-of-1
bit-identity against the scalar engine is *measured* on the actual
run outputs in-harness rather than assumed, and when the container
cannot reach the 50x aggregate target the shortfall is recorded with
a note instead of being asserted -- exactly how
``BENCH_parallel_campaign.json`` handled its 1-CPU container.  Each
batch entry also records the fleet engine's per-phase wall breakdown
(PV solve / control plane / record / capacitor, via
:class:`~repro.telemetry.profiling.PhaseTimer`) from the best timed
round, so the committed JSON shows *where* the step loop spends its
time, not just the total.  ``repro bench --fleet`` writes the report
as JSON.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.mppt import DischargeTimeMppTracker, MppTrackingController
from repro.core.system import EnergyHarvestingSoC
from repro.errors import ModelParameterError
from repro.fleet.engine import FleetNode, FleetSimulator
from repro.parallel.cache import characterized_system
from repro.perf.benchmark import results_bit_identical
from repro.pv.traces import step_trace
from repro.sim.engine import SimulationConfig, TransientSimulator
from repro.telemetry.profiling import PhaseTimer, Stopwatch

#: Batch sizes reported, smallest first (1 doubles as the equivalence
#: probe against the scalar engine).
BATCH_SIZES: Tuple[int, ...] = (1, 16, 128, 1024)

#: The aggregate-speedup aspiration at the largest batch.
TARGET_SPEEDUP = 50.0


@dataclass(frozen=True)
class BatchTiming:
    """Wall-clock outcome of one batch size."""

    batch: int
    rounds: int
    steps: int
    fleet_best_wall_s: float
    scalar_best_wall_s: float
    fleet_steps_per_s: float
    scalar_steps_per_s: float
    speedup: float
    #: Per-phase wall seconds of the best fleet round (PV solve /
    #: control plane / record / capacitor; the step-loop phases only,
    #: so they sum to slightly less than ``fleet_best_wall_s`` --
    #: node reset and result assembly are outside the loop).
    fleet_phase_wall_s: Dict[str, float]


@dataclass(frozen=True)
class FleetReport:
    """The full benchmark outcome (serialized to BENCH JSON)."""

    workload: str
    time_step_s: float
    duration_s: float
    rounds: int
    smoke: bool
    timings: Tuple[BatchTiming, ...]
    max_batch: int
    speedup_at_max_batch: float
    target_speedup: float
    speedup_asserted: bool
    note: str
    batch1_bit_identical: bool

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (sorted by the writer)."""
        return {
            "bench": "fleet_engine",
            "workload": self.workload,
            "time_step_s": self.time_step_s,
            "duration_s": self.duration_s,
            "rounds": self.rounds,
            "smoke": self.smoke,
            "batches": {
                str(timing.batch): {
                    "steps": timing.steps,
                    "fleet_best_wall_s": round(timing.fleet_best_wall_s, 6),
                    "scalar_best_wall_s": round(
                        timing.scalar_best_wall_s, 6
                    ),
                    "fleet_steps_per_s": round(timing.fleet_steps_per_s, 1),
                    "scalar_steps_per_s": round(
                        timing.scalar_steps_per_s, 1
                    ),
                    "speedup": round(timing.speedup, 3),
                    "fleet_phase_wall_s": {
                        phase: round(wall, 6)
                        for phase, wall in sorted(
                            timing.fleet_phase_wall_s.items()
                        )
                    },
                }
                for timing in self.timings
            },
            "max_batch": self.max_batch,
            "speedup_at_max_batch": round(self.speedup_at_max_batch, 3),
            "target_speedup": self.target_speedup,
            "speedup_asserted": self.speedup_asserted,
            "note": self.note,
            "batch1_bit_identical": self.batch1_bit_identical,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        }


def _scalar_simulator(
    system: EnergyHarvestingSoC,
    tracker: DischargeTimeMppTracker,
    config: SimulationConfig,
    before: float,
) -> TransientSimulator:
    return TransientSimulator(
        cell=system.cell,
        node_capacitor=system.new_node_capacitor(system.mpp(before).voltage_v),
        processor=system.processor,
        regulator=system.regulator("sc"),
        controller=MppTrackingController(tracker, initial_irradiance=before),
        comparators=system.new_comparator_bank(),
        config=config,
    )


def _fleet_node(
    system: EnergyHarvestingSoC,
    tracker: DischargeTimeMppTracker,
    before: float,
) -> FleetNode:
    return FleetNode(
        cell=system.cell,
        capacitor=system.new_node_capacitor(system.mpp(before).voltage_v),
        processor=system.processor,
        regulator=system.regulator("sc"),
        controller=MppTrackingController(tracker, initial_irradiance=before),
        comparators=system.new_comparator_bank(),
    )


def run_fleet_benchmark(
    rounds: int = 2,
    duration_s: float = 10e-3,
    time_step_s: float = 10e-6,
    smoke: bool = False,
) -> FleetReport:
    """Benchmark the fleet engine against N scalar runs (see module doc).

    ``smoke=True`` shrinks the run for CI gates (shorter trace, one
    round); the bit-identity claim is still measured on real runs, only
    the wall-clock numbers lose statistical weight.
    """
    if rounds < 1:
        raise ModelParameterError(f"rounds must be >= 1, got {rounds}")
    if smoke:
        duration_s = min(duration_s, 2e-3)
        rounds = 1
    before, after = 1.0, 0.3
    dim_time_s = min(5e-3, duration_s / 3)
    trace = step_trace(before, after, dim_time_s, duration_s)
    system, lut = characterized_system()
    # One memoizing tracker shared by every lane and every scalar run,
    # like the hotpath bench: the tracker's operating-point memo is a
    # pure function of irradiance, so sharing is value-transparent and
    # keeps the timings about the engines, not the LUT warm-up.
    tracker = DischargeTimeMppTracker(system, "sc", lut=lut)
    steps = int(np.ceil(duration_s / time_step_s))
    config = SimulationConfig(
        time_step_s=time_step_s, record_every=4, stop_on_brownout=False
    )

    # In-harness equivalence probe: batch-of-1 vs one scalar run.
    scalar_probe = _scalar_simulator(system, tracker, config, before).run(
        trace
    )
    fleet_probe = FleetSimulator(
        [_fleet_node(system, tracker, before)], config=config
    ).run([trace])[0]
    identical = results_bit_identical(scalar_probe, fleet_probe)

    timings: List[BatchTiming] = []
    for batch in BATCH_SIZES:
        fleet_best = float("inf")
        scalar_best = float("inf")
        phase_wall: Dict[str, float] = {}
        for timed in range(-1, rounds):  # round -1 is the warm-up
            nodes = [
                _fleet_node(system, tracker, before) for _ in range(batch)
            ]
            simulator = FleetSimulator(nodes, config=config)
            simulator.phase_timer = PhaseTimer()
            watch = Stopwatch()
            simulator.run([trace] * batch)
            wall = watch.elapsed_s()
            if timed >= 0 and wall < fleet_best:
                fleet_best = wall
                phase_wall = dict(simulator.phase_timer.phase_wall_s)

            runners = [
                _scalar_simulator(system, tracker, config, before)
                for _ in range(batch)
            ]
            watch = Stopwatch()
            for runner in runners:
                runner.run(trace)
            wall = watch.elapsed_s()
            if timed >= 0:
                scalar_best = min(scalar_best, wall)
        aggregate = batch * (steps + 1)
        timings.append(
            BatchTiming(
                batch=batch,
                rounds=rounds,
                steps=steps,
                fleet_best_wall_s=fleet_best,
                scalar_best_wall_s=scalar_best,
                fleet_steps_per_s=aggregate / fleet_best,
                scalar_steps_per_s=aggregate / scalar_best,
                speedup=scalar_best / fleet_best,
                fleet_phase_wall_s=phase_wall,
            )
        )

    top = timings[-1]
    asserted = top.speedup >= TARGET_SPEEDUP
    if asserted:
        note = (
            f"aggregate speedup {top.speedup:.2f}x at batch {top.batch} "
            f"meets the {TARGET_SPEEDUP:.0f}x target"
        )
    else:
        note = (
            f"aggregate speedup {top.speedup:.2f}x at batch {top.batch} "
            f"below the {TARGET_SPEEDUP:.0f}x aspiration on this "
            "container: the PV solve, capacitor integration and "
            "controller/regulator decisions all batch, but the "
            "per-step Python/numpy dispatch of the masked update "
            "kernels bounds the win (see fleet_phase_wall_s); "
            "recorded honestly, not asserted"
        )
    return FleetReport(
        workload="fig8_mppt",
        time_step_s=time_step_s,
        duration_s=duration_s,
        rounds=rounds,
        smoke=smoke,
        timings=tuple(timings),
        max_batch=top.batch,
        speedup_at_max_batch=top.speedup,
        target_speedup=TARGET_SPEEDUP,
        speedup_asserted=asserted,
        note=note,
        batch1_bit_identical=identical,
    )


def write_report(report: FleetReport, path: "str | Path") -> Path:
    """Serialize the report as sorted, indented JSON; returns the path."""
    target = Path(path)
    target.write_text(
        json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
    )
    return target
