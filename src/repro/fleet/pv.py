"""Batched single-diode PV solves for the fleet engine.

The scalar engine's hot path is :meth:`repro.pv.cell.SingleDiodeCell.
current_scalar`: a cold-started damped Newton iteration whose result is
guaranteed bit-identical to the historical array solver.  The array
solver itself (:meth:`~repro.pv.cell.SingleDiodeCell.current`) cannot
serve a batched engine that promises scalar equivalence, because it
iterates until *global* convergence -- elements whose own step already
shrank below tolerance keep taking Newton steps while their neighbours
catch up, and the floating-point Newton map has several attracting
fixed points within ~1e-16 A of each other, so those extra steps move
last bits.

:func:`batched_current` therefore re-expresses the *scalar* iteration
across lanes: every lane is seeded, clipped and stepped with exactly
the expression order of ``current_scalar``, and a lane **freezes the
moment its own applied step satisfies the tolerance** -- precisely when
the scalar loop would have returned.  Elementwise numpy arithmetic
(including ``np.exp``) is bit-identical to the same operations on
Python floats, so each lane of the batch equals its scalar solve bit
for bit.  ``tests/fleet/test_pv.py`` asserts this over dense
voltage/irradiance grids and hypothesis-driven parameter draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConvergenceError, ModelParameterError
from repro.pv.cell import SingleDiodeCell

#: Same iteration budget and tolerance as the scalar path.
_NEWTON_MAX_ITERATIONS = 100
_NEWTON_TOLERANCE_A = 1e-12


@dataclass(frozen=True)
class CellParams:
    """Per-lane single-diode parameters as structure-of-arrays.

    One entry per lane; heterogeneous cells (different fault draws,
    temperatures, calibrations) batch together because every parameter
    is a lane-indexed array.
    """

    photo_current_full_sun_a: np.ndarray
    saturation_current_a: np.ndarray
    diode_scale_v: np.ndarray
    series_resistance_ohm: np.ndarray
    shunt_resistance_ohm: np.ndarray

    @property
    def lanes(self) -> int:
        """Number of lanes in the batch."""
        return int(self.photo_current_full_sun_a.shape[0])

    @classmethod
    def from_cells(
        cls, cells: Sequence[SingleDiodeCell]
    ) -> "Optional[CellParams]":
        """Pack per-lane cell models into arrays.

        Returns ``None`` when any entry is not a plain
        :class:`~repro.pv.cell.SingleDiodeCell` (a custom cell model
        with its own solver); the fleet engine then falls back to
        per-lane scalar solves, which is still exact.
        """
        if not cells:
            raise ModelParameterError("cannot batch an empty cell list")
        if any(type(cell) is not SingleDiodeCell for cell in cells):
            return None
        return cls(
            photo_current_full_sun_a=np.array(
                [cell.photo_current_full_sun_a for cell in cells]
            ),
            saturation_current_a=np.array(
                [cell.saturation_current_a for cell in cells]
            ),
            diode_scale_v=np.array([cell.diode_scale_v for cell in cells]),
            series_resistance_ohm=np.array(
                [cell.series_resistance_ohm for cell in cells]
            ),
            shunt_resistance_ohm=np.array(
                [cell.shunt_resistance_ohm for cell in cells]
            ),
        )


def batched_current(
    params: CellParams,
    voltage_v: np.ndarray,
    irradiance: np.ndarray,
    active: np.ndarray,
) -> np.ndarray:
    """Terminal current per lane, bit-identical to the scalar solves.

    ``voltage_v``/``irradiance`` are lane-indexed arrays; ``active`` is
    a boolean mask selecting the lanes to solve (dead lanes cost
    nothing and return 0.0 placeholders that the engine never reads).

    Every arithmetic step mirrors
    :meth:`repro.pv.cell.SingleDiodeCell.current_scalar` (cold start):
    same seed, same clip bounds, same expression order -- and each lane
    leaves the iteration exactly when its own applied Newton step drops
    below tolerance, so lane ``i`` equals
    ``cells[i].current_scalar(voltage_v[i], irradiance[i])`` bit for
    bit.
    """
    out = np.zeros(voltage_v.shape[0])
    act_idx = np.nonzero(active)[0]
    if act_idx.size == 0:
        return out
    irr = irradiance[act_idx]
    if np.any(irr < 0.0):
        bad = float(irr[irr < 0.0][0])
        raise ModelParameterError(f"irradiance must be >= 0, got {bad}")

    v = voltage_v[act_idx]
    iph = params.photo_current_full_sun_a[act_idx] * irr
    scale = params.diode_scale_v[act_idx]
    i0 = params.saturation_current_a[act_idx]
    rsh = params.shunt_resistance_ohm[act_idx]
    rs = params.series_resistance_ohm[act_idx]

    exponent = np.minimum(np.maximum(v / scale, -60.0), 60.0)
    ideal = i0 * (np.exp(exponent) - 1.0)

    zero_rs = rs == 0.0
    if np.any(zero_rs):
        # No implicit coupling: the closed form, exactly as the scalar.
        out[act_idx[zero_rs]] = (iph - ideal - v / rsh)[zero_rs]
    work = ~zero_rs
    if not np.any(work):
        return out

    # Compressed working set; `lanes` scatters results back.
    lanes = act_idx[work]
    v_w = v[work]
    iph_w = iph[work]
    scale_w = scale[work]
    i0_w = i0[work]
    rsh_w = rsh[work]
    rs_w = rs[work]

    seed = iph_w - ideal[work]
    lo = -iph_w - 1e-3
    current = np.minimum(np.maximum(seed, lo), iph_w)

    for _ in range(_NEWTON_MAX_ITERATIONS):
        diode_v = v_w + current * rs_w
        exponent = np.minimum(np.maximum(diode_v / scale_w, -60.0), 60.0)
        exp_term = np.exp(exponent)
        f = iph_w - i0_w * (exp_term - 1.0) - diode_v / rsh_w - current
        df = -i0_w * exp_term * rs_w / scale_w - rs_w / rsh_w - 1.0
        step = f / df
        current = current - step
        done = np.abs(step) < _NEWTON_TOLERANCE_A
        if np.all(done):
            out[lanes] = current
            return out
        # Freeze converged lanes at their just-applied value and keep
        # iterating only the stragglers -- the per-element analogue of
        # the scalar loop's early return.
        out[lanes[done]] = current[done]
        keep = ~done
        lanes = lanes[keep]
        v_w = v_w[keep]
        iph_w = iph_w[keep]
        scale_w = scale_w[keep]
        i0_w = i0_w[keep]
        rsh_w = rsh_w[keep]
        rs_w = rs_w[keep]
        current = current[keep]
        step = step[keep]
    raise ConvergenceError(
        "single-diode Newton iteration failed to converge; "
        f"max residual step {float(np.max(np.abs(step))):.3e} A"
    )
