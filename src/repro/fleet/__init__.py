"""Batched structure-of-arrays simulation of node fleets.

:class:`FleetSimulator` advances many independent harvest-store-compute
nodes per step with masked array updates, bit-identical lane-for-lane
to the scalar :class:`~repro.sim.engine.TransientSimulator` (the
differential harness in ``tests/fleet/`` is the contract).  Campaigns
dispatch homogeneous-config shards here automatically; see
``docs/fleet.md``.
"""

from repro.fleet.bench import FleetReport, run_fleet_benchmark
from repro.fleet.campaign import fleet_transient_batch_task
from repro.fleet.control import (
    FALLBACK_FAMILY,
    FAMILY_CODES,
    ControlPlane,
    classify_controller,
    shared_decision_caches,
)
from repro.fleet.engine import FleetNode, FleetSimulator
from repro.fleet.pv import CellParams, batched_current
from repro.fleet.state import NO_MODE, FleetState

__all__ = [
    "CellParams",
    "ControlPlane",
    "FALLBACK_FAMILY",
    "FAMILY_CODES",
    "FleetNode",
    "FleetReport",
    "FleetSimulator",
    "FleetState",
    "NO_MODE",
    "batched_current",
    "classify_controller",
    "fleet_transient_batch_task",
    "run_fleet_benchmark",
    "shared_decision_caches",
]
