"""Fleet-batched execution of the transient robustness campaign.

:func:`run_transient_campaign <repro.faults.campaign.run_transient_
campaign>` dispatches homogeneous-config shards here when its
``engine`` resolves to ``"fleet"``: each shard of seeds becomes one
:class:`~repro.fleet.engine.FleetSimulator` batch instead of N scalar
runs.  Every lane is built by the *same* builders the scalar campaign
task uses (seeded fault draw, faulted system/trace/capacitor/bank,
scheme controller, per-lane telemetry session), so the resulting
:class:`~repro.faults.campaign.RunRecord` stream is bit-identical to
the scalar path -- asserted by ``tests/fleet/``.

The batch task is module-level and fully determined by picklable
arguments, so it shards across spawn-safe worker processes exactly
like the scalar task does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.faults.campaign import (
    CampaignConfig,
    RunRecord,
    _make_controller,
    _survived,
)
from repro.faults.models import (
    FaultSpec,
    draw_faults,
    faulted_comparator_bank,
    faulted_node_capacitor,
    faulted_system,
    faulted_trace,
)
from repro.fleet.engine import FleetNode, FleetSimulator
from repro.parallel.cache import characterized_system
from repro.parallel.ids import campaign_run_id
from repro.processor.workloads import Workload
from repro.pv.traces import IrradianceTrace
from repro.sim.engine import SimulationConfig
from repro.telemetry.aggregate import run_metric_tuple
from repro.telemetry.session import TelemetrySession


def fleet_transient_batch_task(
    seed_batch: Sequence[int],
    *,
    spec: "FaultSpec",
    config: "CampaignConfig",
    workload_cycles: int,
    ideal_cycles: float,
    with_metrics: bool = False,
) -> "List[RunRecord]":
    """Execute one shard of seeded runs as a single fleet batch.

    Mirrors :func:`repro.faults.campaign._transient_run_task` lane for
    lane: same builders in the same order per seed, same
    :class:`~repro.sim.engine.SimulationConfig`, same record reduction
    -- only the inner engine differs, and the engines are bit-identical.
    """
    reference_system, lut = characterized_system()
    comparator_count = len(reference_system.comparator_thresholds_v)
    sim_config = SimulationConfig(
        time_step_s=config.time_step_s,
        stop_on_completion=False,
        stop_on_brownout=False,
        recover_from_brownout=True,
        recovery_voltage_v=config.recovery_voltage_v,
    )
    sessions: "List[Optional[TelemetrySession]]" = []
    nodes: List[FleetNode] = []
    traces: List[IrradianceTrace] = []
    for seed in seed_batch:
        session = TelemetrySession() if with_metrics else None
        draw = draw_faults(spec, seed, comparator_count=comparator_count)
        system = faulted_system(draw)
        trace = faulted_trace(config.base_trace(), draw)
        workload = Workload(name="campaign", cycles=workload_cycles)
        nodes.append(
            FleetNode(
                cell=system.cell,
                capacitor=faulted_node_capacitor(
                    system, draw, config.initial_voltage_v
                ),
                processor=system.processor,
                regulator=system.regulator(config.regulator_name),
                controller=_make_controller(
                    config, system, lut,
                    telemetry=session, trace=trace, workload=workload,
                ),
                comparators=faulted_comparator_bank(system, draw),
                workload=workload,
                telemetry=session,
                seed=seed,
            )
        )
        traces.append(trace)
        sessions.append(session)

    simulator = FleetSimulator(nodes, config=sim_config)
    results = simulator.run(traces, duration_s=config.duration_s)

    records: "List[RunRecord]" = []
    for seed, session, result in zip(seed_batch, sessions, results):
        records.append(
            RunRecord(
                seed=seed,
                run_id=campaign_run_id(spec, config, seed),
                survived=_survived(result, config),
                completed=result.completed,
                completion_time_s=result.completion_time_s,
                brownout_count=result.brownout_count,
                downtime_s=result.downtime_s,
                final_cycles=float(result.final_cycles),
                throughput_ratio=float(result.final_cycles) / ideal_cycles,
                min_node_voltage_v=result.min_node_voltage_v(),
                metrics=(
                    run_metric_tuple(session.metrics)
                    if session is not None
                    else None
                ),
            )
        )
    return records
