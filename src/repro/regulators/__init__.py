"""On-chip voltage regulator substrate.

The paper implements three fully-integrated 65 nm regulators and
measures their efficiency-versus-voltage profiles:

* a linear/low-dropout regulator (Fig. 3, ~45% at 0.55 V),
* a reconfigurable switched-capacitor regulator with 5:4 / 3:2 / 2:1
  ratios (Fig. 4, 67% full load / 64% half load at 0.55 V),
* an on-chip buck regulator (Fig. 5, 63% / 58% at 0.55 V, 40-75%
  across its 0.3-0.8 V range),

plus the *bypass* path (direct solar-to-processor connection) that the
holistic policy engages at low light and at the end of a sprint.

Each model decomposes into physical loss components (conduction,
switching, fixed/controller, quiescent) so the efficiency *shape* --
which is what the holistic optimisation exploits -- emerges from first
principles rather than a lookup of the paper's curves.
"""

from repro.regulators.base import Regulator, RegulatorOperatingPoint
from repro.regulators.bypass import BypassPath
from repro.regulators.buck import BuckRegulator, paper_buck
from repro.regulators.ldo import LinearRegulator, paper_ldo
from repro.regulators.switched_capacitor import (
    SwitchedCapacitorRegulator,
    paper_switched_capacitor,
)

__all__ = [
    "Regulator",
    "RegulatorOperatingPoint",
    "LinearRegulator",
    "SwitchedCapacitorRegulator",
    "BuckRegulator",
    "BypassPath",
    "paper_ldo",
    "paper_switched_capacitor",
    "paper_buck",
]
