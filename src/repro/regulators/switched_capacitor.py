"""Reconfigurable switched-capacitor regulator -- the paper's Fig. 4.

An SC converter moves charge through flying capacitors at a fixed
topological ratio ``k`` (the paper's bank implements 5:4, 3:2 and 2:1,
i.e. ``k`` in {4/5, 2/3, 1/2}).  Its physics:

* charge conservation makes the input current ``k * Iout``, so the
  *intrinsic* loss is the linear drop from the no-load voltage
  ``Vnl = k * Vin`` down to ``Vout`` -- efficiency can never exceed
  ``Vout / Vnl`` within a ratio band;
* the switch matrix has a finite output impedance ``Rout ~ 1/(fsw*Cfly)``,
  which caps the deliverable current near a band edge;
* gate charge and bottom-plate parasitics add a loss proportional to
  the delivered current (an effective series drop);
* the clock/controller draws a small load-independent power, which is
  what collapses light-load efficiency and drives the paper's low-light
  bypass result (Fig. 7(a)) and holistic-MEP shift (Fig. 7(b)).

The model picks, per query, the feasible ratio that minimises input
power -- the reconfiguration the paper refers to as "multiple
configurations must be used to cover large operating voltage range".
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence, Tuple

from repro.errors import ModelParameterError, OperatingRangeError
from repro.regulators.base import Regulator
from repro.regulators.losses import FixedLoss, SwitchingLoss


@dataclass(frozen=True)
class ScBandPlan:
    """Float-only snapshot of everything :meth:`_best_band` reads.

    The fleet control plane hoists the per-query ratio scan into array
    operations across lanes; this plan is the data it needs, expressed
    without :class:`~fractions.Fraction` so it can key a
    :func:`~repro.parallel.ids.stable_fingerprint` (lanes with equal
    plans share one precomputed band table).  ``ratios`` keeps the
    scan's ascending order, so an array scan that walks the columns in
    index order reproduces the scalar first-feasible tie-break exactly.
    ``efficiency_derating`` snapshots the fault-injected derating at
    plan time; campaigns set it before the run, never during one.
    """

    ratios: Tuple[float, ...]
    switching_drop_v: float
    fixed_loss_w: float
    fixed_loss_reference_v: float
    output_impedance_ohm: float
    min_output_v: float
    max_output_v: float
    nominal_input_v: float
    efficiency_derating: float

#: The paper's ratio bank (Fig. 4 schematic labels): 5:4, 3:2 and 2:1.
PAPER_RATIOS: Tuple[Fraction, ...] = (
    Fraction(4, 5),
    Fraction(2, 3),
    Fraction(1, 2),
)


class SwitchedCapacitorRegulator(Regulator):
    """Multi-ratio switched-capacitor DC-DC converter.

    Parameters
    ----------
    ratios:
        Conversion fractions ``Vnl/Vin``, each in (0, 1].
    switching_drop_v:
        Effective series voltage drop modelling gate-charge and
        bottom-plate losses (proportional to load current).
    fixed_loss_w:
        Controller/clock loss at the reference input voltage.
    output_impedance_ohm:
        Minimum achievable output impedance of the switch matrix; caps
        the load current to ``(Vnl - Vout) / Rout`` within a band.
    """

    def __init__(
        self,
        nominal_input_v: float = 1.2,
        ratios: Sequence[Fraction] = PAPER_RATIOS,
        switching_drop_v: float = 0.05,
        fixed_loss_w: float = 1.0e-3,
        fixed_loss_reference_v: float = 1.2,
        output_impedance_ohm: float = 1.5,
        min_output_v: float = 0.15,
        max_output_v: float = 1.0,
        name: str = "SC",
    ) -> None:
        super().__init__(name, nominal_input_v, min_output_v, max_output_v)
        if not ratios:
            raise ModelParameterError("SC regulator needs at least one ratio")
        for ratio in ratios:
            if not 0 < ratio <= 1:
                raise ModelParameterError(f"ratio {ratio} outside (0, 1]")
        if output_impedance_ohm <= 0.0:
            raise ModelParameterError(
                f"output impedance must be positive, got {output_impedance_ohm}"
            )
        self.ratios = tuple(sorted(set(Fraction(r) for r in ratios)))
        self.switching = SwitchingLoss(switching_drop_v)
        self.fixed = FixedLoss(fixed_loss_w, reference_input_v=fixed_loss_reference_v)
        self.output_impedance_ohm = output_impedance_ohm
        # Float conversions hoisted out of the per-query ratio scan:
        # float(Fraction) is exact and deterministic, so precomputing it
        # changes nothing numerically -- it only removes the repeated
        # Fraction arithmetic from the simulator's hot path.
        self._ratio_bank: Tuple[Tuple[Fraction, float], ...] = tuple(
            (ratio, float(ratio)) for ratio in self.ratios
        )

    def band_plan(self) -> ScBandPlan:
        """The scan's inputs as a frozen float-only plan (see above)."""
        return ScBandPlan(
            ratios=tuple(ratio_f for _, ratio_f in self._ratio_bank),
            switching_drop_v=self.switching.drop_v,
            fixed_loss_w=self.fixed.power_w,
            fixed_loss_reference_v=self.fixed.reference_input_v,
            output_impedance_ohm=self.output_impedance_ohm,
            min_output_v=self.min_output_v,
            max_output_v=self.max_output_v,
            nominal_input_v=self.nominal_input_v,
            efficiency_derating=self._efficiency_derating,
        )

    # -- per-ratio primitives -------------------------------------------------

    def no_load_voltage(self, ratio: Fraction, v_in: "float | None" = None) -> float:
        """``Vnl = k * Vin`` for a ratio band."""
        return float(ratio) * self._resolve_input(v_in)

    def current_limit(
        self, ratio: Fraction, v_out: float, v_in: "float | None" = None
    ) -> float:
        """Largest load current the band can source at ``v_out`` [A]."""
        headroom = self.no_load_voltage(ratio, v_in) - v_out
        if headroom <= 0.0:
            return 0.0
        return headroom / self.output_impedance_ohm

    def _band_input_power(
        self, ratio: Fraction, v_out: float, i_out: float, v_in: float
    ) -> float:
        """Input power of one ratio band at load current ``i_out``."""
        vnl = float(ratio) * v_in
        return (
            vnl * i_out
            + self.switching.power(i_out)
            + self.fixed.power(v_in)
        )

    def _best_band(
        self, v_out: float, i_out: float, v_in: float
    ) -> "Tuple[Fraction, float] | None":
        """Feasibility scan: the minimum-input-power band and its Pin.

        One fused pass over the precomputed float ratios, evaluating
        exactly the same expressions (in the same order) as the
        per-ratio primitives above, so the selected band and its input
        power are bit-identical to the unfused scan.
        """
        # Tolerance so a load sized exactly at a band's current limit
        # (as the inverse solver does) still selects that band.
        current_tolerance = 1e-9 + 1e-9 * i_out
        switching_w = self.switching.power(i_out)
        fixed_w = self.fixed.power(v_in)
        rout = self.output_impedance_ohm
        best: "Fraction | None" = None
        best_pin = float("inf")
        for ratio, ratio_f in self._ratio_bank:
            vnl = ratio_f * v_in
            headroom = vnl - v_out
            limit = headroom / rout if headroom > 0.0 else 0.0
            if limit < i_out - current_tolerance:
                continue
            if vnl <= v_out:
                continue
            pin = vnl * i_out + switching_w + fixed_w
            if pin < best_pin:
                best = ratio
                best_pin = pin
        if best is None:
            return None
        return (best, best_pin)

    def _no_feasible_band(
        self, v_out: float, p_out: float, v_in: float
    ) -> OperatingRangeError:
        return OperatingRangeError(
            f"{self.name}: no ratio can deliver {p_out * 1e3:.3f} mW at "
            f"{v_out:.3f} V from {v_in:.3f} V"
        )

    def select_ratio(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> Fraction:
        """The feasible ratio with minimum input power for this load."""
        v_in = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        if p_out < 0.0:
            raise OperatingRangeError(
                f"{self.name}: output power must be >= 0, got {p_out}"
            )
        i_out = p_out / v_out if v_out > 0.0 else 0.0
        band = self._best_band(v_out, i_out, v_in)
        if band is None:
            raise self._no_feasible_band(v_out, p_out, v_in)
        return band[0]

    # -- Regulator interface ----------------------------------------------------

    def input_power(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> float:
        v_in_resolved = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        if p_out < 0.0:
            raise OperatingRangeError(
                f"{self.name}: output power must be >= 0, got {p_out}"
            )
        i_out = p_out / v_out if v_out > 0.0 else 0.0
        band = self._best_band(v_out, i_out, v_in_resolved)
        if band is None:
            raise self._no_feasible_band(v_out, p_out, v_in_resolved)
        return self.derate_input_power(band[1])

    def max_output_power(
        self, v_out: float, p_in_available: float, v_in: "float | None" = None
    ) -> float:
        """Closed-form inverse, maximised over the ratio bank.

        Within one band the deliverable current is limited both by the
        power budget ``(Pin - Pfix) / (Vnl + Vdrop)`` and by the switch
        matrix impedance.
        """
        if p_in_available < 0.0:
            raise OperatingRangeError(
                f"{self.name}: available power must be >= 0, got {p_in_available}"
            )
        v_in_resolved = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        budget = self.derate_available_power(p_in_available) - self.fixed.power(
            v_in_resolved
        )
        if budget <= 0.0:
            return 0.0
        best = 0.0
        for ratio in self.ratios:
            vnl = self.no_load_voltage(ratio, v_in_resolved)
            if vnl <= v_out:
                continue
            i_power = budget / (vnl + self.switching.drop_v)
            i_cap = self.current_limit(ratio, v_out, v_in_resolved)
            best = max(best, v_out * min(i_power, i_cap))
        return best


#: Input voltage of the paper's Fig. 4 efficiency characterisation.  The
#: test chip's supply range is 1.2-1.5 V (Section VII); the mid-range
#: value reproduces Fig. 4's anchors (67% full load / 64% half load at
#: 0.55 V) with this loss decomposition.
FIG4_BENCH_INPUT_V = 1.35


def paper_switched_capacitor(
    nominal_input_v: float = FIG4_BENCH_INPUT_V,
) -> SwitchedCapacitorRegulator:
    """The paper's 65 nm SC regulator (Fig. 4).

    Calibrated so that at the Fig. 4 bench input and 0.55 V output it
    reaches ~67% efficiency at full load (~10 mW) and ~64% at half
    load, with the light-load rolloff that the Fig. 7 bypass result and
    the holistic-MEP shift both rest on.
    """
    return SwitchedCapacitorRegulator(nominal_input_v=nominal_input_v)
