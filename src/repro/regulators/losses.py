"""Physical loss components composed by the converter models.

Splitting converter dissipation into named components keeps each
regulator model honest (every watt of loss has a physical origin) and
lets the ablation benchmarks switch individual mechanisms off to show
which one drives each of the paper's effects -- e.g. the *fixed*
controller loss is what collapses efficiency at light load and makes
regulator bypass win at quarter sun (Fig. 7(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class ConductionLoss:
    """Resistive (I^2 R) loss through switches, inductor DCR and routing."""

    resistance_ohm: float

    def __post_init__(self) -> None:
        if self.resistance_ohm < 0.0:
            raise ModelParameterError(
                f"conduction resistance must be >= 0, got {self.resistance_ohm}"
            )

    def power(self, output_current_a: float) -> float:
        """Dissipated power at the given load current [W]."""
        return self.resistance_ohm * output_current_a * output_current_a


@dataclass(frozen=True)
class SwitchingLoss:
    """Gate-charge / bottom-plate loss proportional to delivered current.

    In a current-mode-modulated converter the switching frequency tracks
    the load current, so the per-cycle CV^2 loss aggregates to an
    effective voltage drop ``drop_v`` times the output current.
    """

    drop_v: float

    def __post_init__(self) -> None:
        if self.drop_v < 0.0:
            raise ModelParameterError(
                f"switching drop must be >= 0, got {self.drop_v}"
            )

    def power(self, output_current_a: float) -> float:
        """Dissipated power at the given load current [W]."""
        return self.drop_v * output_current_a


@dataclass(frozen=True)
class FixedLoss:
    """Load-independent controller/clock/reference loss.

    Scales with the square of the input voltage relative to the
    characterisation supply (the controller's own CV^2 f dissipation),
    which matters because the live solar-node voltage moves with light.
    """

    power_w: float
    reference_input_v: float = 1.2

    def __post_init__(self) -> None:
        if self.power_w < 0.0:
            raise ModelParameterError(
                f"fixed loss must be >= 0, got {self.power_w}"
            )
        if self.reference_input_v <= 0.0:
            raise ModelParameterError(
                f"reference input voltage must be positive, got {self.reference_input_v}"
            )

    def power(self, input_voltage_v: float) -> float:
        """Dissipated power at the given input voltage [W]."""
        ratio = input_voltage_v / self.reference_input_v
        return self.power_w * ratio * ratio


@dataclass(frozen=True)
class QuiescentLoss:
    """Constant bias current drawn from the input rail (LDO error amp)."""

    current_a: float

    def __post_init__(self) -> None:
        if self.current_a < 0.0:
            raise ModelParameterError(
                f"quiescent current must be >= 0, got {self.current_a}"
            )

    def power(self, input_voltage_v: float) -> float:
        """Dissipated power at the given input voltage [W]."""
        return self.current_a * input_voltage_v
