"""Regulator bypass path: direct harvester-to-processor connection.

The paper's holistic policy *bypasses* the regulator in two situations:

* at low light, where converter overhead exceeds the MPP-tracking gain
  (Section IV-B / Fig. 7(a));
* at the end of a deadline sprint, to keep delivering energy after the
  solar node has sagged below what the regulator can sustain
  (Section VI-B / Fig. 9(b), measured in Fig. 11(b)).

In bypass the processor sits directly on the solar node, so the output
voltage *is* the input voltage (the passive-voltage-scaling setup of the
related work the paper cites) and conversion is lossless apart from a
small switch resistance.
"""

from __future__ import annotations

from repro.errors import ModelParameterError, OperatingRangeError
from repro.regulators.base import Regulator
from repro.regulators.losses import ConductionLoss


class BypassPath(Regulator):
    """Direct connection modelled as a near-ideal unity converter.

    The output voltage must equal the (live) input voltage; asking for
    any other output is a range error, which is exactly how the
    operating-point optimizers discover that bypass removes the freedom
    to choose the processor voltage.
    """

    def __init__(
        self,
        nominal_input_v: float = 1.2,
        switch_resistance_ohm: float = 0.5,
        min_output_v: float = 0.05,
        max_output_v: float = 2.0,
        name: str = "Bypass",
    ) -> None:
        super().__init__(name, nominal_input_v, min_output_v, max_output_v)
        self.switch = ConductionLoss(switch_resistance_ohm)

    #: Voltage mismatch tolerated between "input" and "output" [V].
    VOLTAGE_TOLERANCE_V = 1e-6

    def input_power(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> float:
        v_in_resolved = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        if p_out < 0.0:
            raise OperatingRangeError(
                f"{self.name}: output power must be >= 0, got {p_out}"
            )
        if abs(v_out - v_in_resolved) > self.VOLTAGE_TOLERANCE_V:
            raise OperatingRangeError(
                f"{self.name}: bypass cannot regulate {v_out:.3f} V from "
                f"{v_in_resolved:.3f} V -- output follows input"
            )
        i_out = p_out / v_out if v_out > 0.0 else 0.0
        return self.derate_input_power(p_out + self.switch.power(i_out))

    def max_output_power(
        self, v_out: float, p_in_available: float, v_in: "float | None" = None
    ) -> float:
        if p_in_available < 0.0:
            raise OperatingRangeError(
                f"{self.name}: available power must be >= 0, got {p_in_available}"
            )
        v_in_resolved = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        if abs(v_out - v_in_resolved) > self.VOLTAGE_TOLERANCE_V:
            return 0.0
        usable = self.derate_available_power(p_in_available)
        r = self.switch.resistance_ohm
        if r == 0.0:
            return usable
        a = r / (v_out * v_out)
        return (-1.0 + (1.0 + 4.0 * a * usable) ** 0.5) / (2.0 * a)

    @staticmethod
    def for_node_voltage(v_node: float) -> "BypassPath":
        """A bypass instance pinned to the given live node voltage."""
        if v_node <= 0.0:
            raise ModelParameterError(
                f"node voltage must be positive, got {v_node}"
            )
        return BypassPath(nominal_input_v=v_node)
