"""Linear (low-dropout) regulator model -- the paper's Fig. 3.

An LDO is a controlled series resistance: the pass device drops
``Vin - Vout`` at the full load current, so the intrinsic efficiency is
``Vout / Vin`` regardless of load -- the resistive-division line visible
in Fig. 3 (about 45% at 0.55 V from a 1.2 V input).  The only other
term is the error amplifier's quiescent current.

The paper's key observation about the LDO (Section IV-A): because its
efficiency scales *linearly* with output voltage, any extra power an
MPP-tracking LDO extracts from the cell is proportionally burned in the
pass device, so the LDO never beats direct connection -- and with its
quiescent current counted, delivers slightly less.
"""

from __future__ import annotations

from repro.errors import ModelParameterError, OperatingRangeError
from repro.regulators.base import Regulator
from repro.regulators.losses import QuiescentLoss
from repro.units import milli_amps


class LinearRegulator(Regulator):
    """Series pass-device regulator with quiescent bias.

    Parameters
    ----------
    dropout_v:
        Minimum headroom required between input and output.
    quiescent_current_a:
        Bias current of the control loop, drawn from the input rail.
    """

    def __init__(
        self,
        nominal_input_v: float = 1.2,
        min_output_v: float = 0.2,
        max_output_v: float = 1.0,
        dropout_v: float = 0.1,
        quiescent_current_a: float = 20e-6,
        name: str = "LDO",
    ) -> None:
        super().__init__(name, nominal_input_v, min_output_v, max_output_v)
        if dropout_v < 0.0:
            raise ModelParameterError(f"dropout must be >= 0, got {dropout_v}")
        self.dropout_v = dropout_v
        self.quiescent = QuiescentLoss(quiescent_current_a)

    def input_power(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> float:
        """``Vin * (Iout + Iq)``: the full load current at input voltage."""
        v_in = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        if p_out < 0.0:
            raise OperatingRangeError(
                f"{self.name}: output power must be >= 0, got {p_out}"
            )
        if v_out > v_in - self.dropout_v:
            raise OperatingRangeError(
                f"{self.name}: output {v_out:.3f} V needs more headroom than "
                f"input {v_in:.3f} V provides (dropout {self.dropout_v:.2f} V)"
            )
        i_out = p_out / v_out
        return self.derate_input_power(v_in * i_out + self.quiescent.power(v_in))

    def max_output_power(
        self, v_out: float, p_in_available: float, v_in: "float | None" = None
    ) -> float:
        """Closed-form inverse: ``Pout = Vout * (Pin/Vin - Iq)``."""
        if p_in_available < 0.0:
            raise OperatingRangeError(
                f"{self.name}: available power must be >= 0, got {p_in_available}"
            )
        v_in = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        if v_out > v_in - self.dropout_v:
            raise OperatingRangeError(
                f"{self.name}: output {v_out:.3f} V needs more headroom than "
                f"input {v_in:.3f} V provides (dropout {self.dropout_v:.2f} V)"
            )
        usable = self.derate_available_power(p_in_available)
        i_available = usable / v_in - self.quiescent.current_a
        return max(0.0, v_out * i_available)


def paper_ldo(nominal_input_v: float = 1.2) -> LinearRegulator:
    """The paper's 65 nm LDO (Fig. 3): ~45% efficient at 0.55 V out."""
    return LinearRegulator(
        nominal_input_v=nominal_input_v,
        min_output_v=0.2,
        max_output_v=1.0,
        dropout_v=0.1,
        quiescent_current_a=milli_amps(0.02),
    )
