"""Regulator interface shared by all converter models.

The holistic optimizers in :mod:`repro.core` interrogate a regulator
through exactly two questions:

1. *forward*: given an output voltage and output power, how much input
   power is drawn from the harvester node? (:meth:`Regulator.input_power`)
2. *inverse*: given the power available at the input (e.g. the solar
   cell's MPP power), how much can be delivered at a chosen output
   voltage? (:meth:`Regulator.max_output_power`)

Subclasses implement :meth:`Regulator.input_power`; the inverse is
provided generically by monotone bisection and may be overridden with a
closed form where one exists.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import (
    ConvergenceError,
    ModelParameterError,
    OperatingRangeError,
)

_BISECT_ITERATIONS = 200
_BISECT_TOLERANCE_W = 1e-12


@dataclass(frozen=True)
class RegulatorOperatingPoint:
    """A fully-resolved regulator operating condition."""

    input_voltage_v: float
    output_voltage_v: float
    output_power_w: float
    input_power_w: float

    @property
    def efficiency(self) -> float:
        """``Pout / Pin``; zero when no input power flows."""
        if self.input_power_w <= 0.0:
            return 0.0
        return self.output_power_w / self.input_power_w

    @property
    def loss_w(self) -> float:
        """Power dissipated inside the converter."""
        return self.input_power_w - self.output_power_w


class Regulator(abc.ABC):
    """Abstract DC-DC converter between the harvester node and the load.

    Parameters
    ----------
    name:
        Human-readable converter name used in reports.
    nominal_input_v:
        Default input voltage assumed when a call site does not pass an
        explicit ``v_in`` (the paper characterises its regulators from a
        1.2 V bench supply; in the full system the input is the live
        solar-node voltage).
    min_output_v / max_output_v:
        The converter's valid output range.
    """

    def __init__(
        self,
        name: str,
        nominal_input_v: float,
        min_output_v: float,
        max_output_v: float,
    ) -> None:
        if not name:
            raise ModelParameterError("regulator needs a non-empty name")
        if nominal_input_v <= 0.0:
            raise ModelParameterError(
                f"nominal input voltage must be positive, got {nominal_input_v}"
            )
        if not 0.0 < min_output_v < max_output_v:
            raise ModelParameterError(
                f"invalid output range [{min_output_v}, {max_output_v}]"
            )
        self.name = name
        self.nominal_input_v = nominal_input_v
        self.min_output_v = min_output_v
        self.max_output_v = max_output_v
        self._efficiency_derating = 1.0

    # -- aging / fault derating ----------------------------------------------

    @property
    def efficiency_derating(self) -> float:
        """Multiplicative efficiency derate in (0, 1]; 1.0 = pristine.

        Models aged switches, increased parasitics or a drifted clock:
        every input-power figure is scaled by ``1/derating`` so the
        converter delivers the same output from proportionally more
        input.  Set via :meth:`set_efficiency_derating` (the fault
        subsystem draws seeded values here).
        """
        return self._efficiency_derating

    def set_efficiency_derating(self, derating: float) -> None:
        """Apply an efficiency derate (see :attr:`efficiency_derating`)."""
        if not 0.0 < derating <= 1.0:
            raise ModelParameterError(
                f"{self.name}: derating must be in (0, 1], got {derating}"
            )
        self._efficiency_derating = derating

    def derate_input_power(self, p_in_ideal: float) -> float:
        """Scale a pristine-model input power by the derate."""
        return p_in_ideal / self._efficiency_derating

    def derate_available_power(self, p_in_available: float) -> float:
        """Input budget usable by the pristine model under the derate.

        The inverse of :meth:`derate_input_power`, for closed-form
        ``max_output_power`` implementations.
        """
        return p_in_available * self._efficiency_derating

    # -- range handling ------------------------------------------------------

    def check_output_voltage(self, v_out: float) -> None:
        """Raise :class:`OperatingRangeError` when ``v_out`` is unreachable."""
        if not self.min_output_v <= v_out <= self.max_output_v:
            raise OperatingRangeError(
                f"{self.name}: output {v_out:.3f} V outside "
                f"[{self.min_output_v:.3f}, {self.max_output_v:.3f}] V"
            )

    def supports_output_voltage(self, v_out: float, v_in: "float | None" = None) -> bool:
        """True when the converter can regulate ``v_out`` from ``v_in``."""
        v_in = self._resolve_input(v_in)
        return self.min_output_v <= v_out <= min(self.max_output_v, v_in)

    def _resolve_input(self, v_in: "float | None") -> float:
        if v_in is None:
            return self.nominal_input_v
        if v_in <= 0.0:
            raise OperatingRangeError(
                f"{self.name}: input voltage must be positive, got {v_in}"
            )
        return v_in

    # -- the converter physics ------------------------------------------------

    @abc.abstractmethod
    def input_power(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> float:
        """Input power [W] drawn to deliver ``p_out`` at ``v_out``.

        Must be strictly increasing in ``p_out`` for fixed voltages (the
        generic inverse relies on this monotonicity).  Raises
        :class:`OperatingRangeError` for unreachable voltages.
        """

    def efficiency(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> float:
        """Conversion efficiency ``Pout / Pin`` at the operating point."""
        if p_out < 0.0:
            raise OperatingRangeError(
                f"{self.name}: output power must be >= 0, got {p_out}"
            )
        if p_out == 0.0:
            return 0.0
        p_in = self.input_power(v_out, p_out, v_in)
        if p_in <= 0.0:
            return 0.0
        return p_out / p_in

    def operating_point(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> RegulatorOperatingPoint:
        """Resolve a complete :class:`RegulatorOperatingPoint`."""
        v_in_resolved = self._resolve_input(v_in)
        return RegulatorOperatingPoint(
            input_voltage_v=v_in_resolved,
            output_voltage_v=v_out,
            output_power_w=p_out,
            input_power_w=self.input_power(v_out, p_out, v_in),
        )

    def max_output_power(
        self, v_out: float, p_in_available: float, v_in: "float | None" = None
    ) -> float:
        """Largest deliverable ``Pout`` given ``p_in_available`` at the input.

        Generic monotone bisection on :meth:`input_power`.  Returns 0
        when even the zero-load overhead exceeds the available power.
        Subclasses with closed-form inverses should override this.
        """
        if p_in_available < 0.0:
            raise OperatingRangeError(
                f"{self.name}: available power must be >= 0, got {p_in_available}"
            )
        self.check_output_voltage(v_out)
        if self.input_power(v_out, 0.0, v_in) >= p_in_available:
            return 0.0

        # Exponential search for an upper bracket.
        high = max(p_in_available, 1e-9)
        for _ in range(60):
            if self.input_power(v_out, high, v_in) >= p_in_available:
                break
            high *= 2.0
        else:
            raise ConvergenceError(
                f"{self.name}: could not bracket max output power"
            )

        low = 0.0
        for _ in range(_BISECT_ITERATIONS):
            mid = 0.5 * (low + high)
            if self.input_power(v_out, mid, v_in) <= p_in_available:
                low = mid
            else:
                high = mid
            if high - low < _BISECT_TOLERANCE_W:
                break
        return low

    # -- introspection ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"vin={self.nominal_input_v:.2f} V, "
            f"vout=[{self.min_output_v:.2f}, {self.max_output_v:.2f}] V)"
        )
