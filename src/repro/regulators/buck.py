"""Fully-integrated buck regulator -- the paper's Fig. 5 and test chip.

The test chip's buck converter (Section VII) regulates 0.3-0.8 V from a
1.2-1.5 V supply at 40-75% efficiency depending on voltage and load.
Unlike the switched-capacitor converter, a buck's conversion ratio is
continuous (set by duty cycle), so there are no ratio bands; instead:

* conduction loss ``Iout^2 * R`` through the power switches and the
  (low-Q, on-chip) inductor;
* a load-independent controller/PWM/gate-driver loss that scales with
  the square of the input voltage.

This produces Fig. 5's broad peak -- better than the SC converter at
high output power, "equal or less efficiency at low output power".
"""

from __future__ import annotations

from repro.errors import ModelParameterError, OperatingRangeError
from repro.regulators.base import Regulator
from repro.regulators.losses import ConductionLoss, FixedLoss


class BuckRegulator(Regulator):
    """Continuous-ratio inductive DC-DC converter.

    Parameters
    ----------
    conduction_resistance_ohm:
        Lumped switch + inductor series resistance.
    fixed_loss_w:
        Controller/PWM/gate-drive loss at the reference input voltage.
    max_duty:
        Highest usable duty cycle; output must stay below
        ``max_duty * Vin``.
    """

    def __init__(
        self,
        nominal_input_v: float = 1.2,
        conduction_resistance_ohm: float = 9.0,
        fixed_loss_w: float = 2.9e-3,
        max_duty: float = 0.95,
        min_output_v: float = 0.25,
        max_output_v: float = 0.85,
        name: str = "Buck",
    ) -> None:
        super().__init__(name, nominal_input_v, min_output_v, max_output_v)
        if not 0.0 < max_duty <= 1.0:
            raise ModelParameterError(f"max duty must be in (0, 1], got {max_duty}")
        self.conduction = ConductionLoss(conduction_resistance_ohm)
        self.fixed = FixedLoss(fixed_loss_w, reference_input_v=nominal_input_v)
        self.max_duty = max_duty

    def _check_duty(self, v_out: float, v_in: float) -> None:
        if v_out > self.max_duty * v_in:
            raise OperatingRangeError(
                f"{self.name}: output {v_out:.3f} V exceeds max duty "
                f"{self.max_duty:.2f} from input {v_in:.3f} V"
            )

    def input_power(
        self, v_out: float, p_out: float, v_in: "float | None" = None
    ) -> float:
        v_in_resolved = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        self._check_duty(v_out, v_in_resolved)
        if p_out < 0.0:
            raise OperatingRangeError(
                f"{self.name}: output power must be >= 0, got {p_out}"
            )
        i_out = p_out / v_out if v_out > 0.0 else 0.0
        return self.derate_input_power(
            p_out
            + self.conduction.power(i_out)
            + self.fixed.power(v_in_resolved)
        )

    def max_output_power(
        self, v_out: float, p_in_available: float, v_in: "float | None" = None
    ) -> float:
        """Closed-form inverse of the quadratic loss model.

        Solves ``Pout + R*(Pout/Vout)^2 + Pfix = Pin`` for the positive
        root.
        """
        if p_in_available < 0.0:
            raise OperatingRangeError(
                f"{self.name}: available power must be >= 0, got {p_in_available}"
            )
        v_in_resolved = self._resolve_input(v_in)
        self.check_output_voltage(v_out)
        self._check_duty(v_out, v_in_resolved)
        budget = self.derate_available_power(p_in_available) - self.fixed.power(
            v_in_resolved
        )
        if budget <= 0.0:
            return 0.0
        r = self.conduction.resistance_ohm
        if r == 0.0:
            return budget
        a = r / (v_out * v_out)
        # a*Pout^2 + Pout - budget = 0
        return (-1.0 + (1.0 + 4.0 * a * budget) ** 0.5) / (2.0 * a)


def paper_buck(nominal_input_v: float = 1.2) -> BuckRegulator:
    """The paper's 65 nm on-chip buck (Fig. 5, test chip of Section VII).

    Calibrated to ~63% efficiency at 0.55 V / full load (~10 mW), ~58%
    at half load, rising toward ~70% at 0.75 V, within the chip's
    reported 40-75% envelope.
    """
    return BuckRegulator(nominal_input_v=nominal_input_v)
