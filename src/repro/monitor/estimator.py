"""Input-power estimation from capacitor discharge timing.

The paper's Section VI-A scheme (eqs. 6-7): when the light changes, the
solar-node capacitor charges or discharges toward the new equilibrium.
While the node falls from comparator threshold ``V1`` to ``V2`` over a
measured time ``t``, energy balance gives

    (Pin - Pdraw) * t = -C/2 * (V1^2 - V2^2)

so the unknown harvest power is

    Pin = Pdraw - C * (V1^2 - V2^2) / (2 t)          (eq. 7)

where ``Pdraw`` is the power the regulator pulls from the node --
"a known function of voltage and clock speed of the microprocessor".
No current sensing is needed; that is the scheme's selling point over
prior MPPT hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError, OperatingRangeError
from repro.storage.capacitor import Capacitor


@dataclass(frozen=True)
class PowerEstimate:
    """Result of one discharge-time measurement."""

    input_power_w: float
    interval_s: float
    upper_v: float
    lower_v: float

    def __post_init__(self) -> None:
        if self.interval_s <= 0.0:
            raise ModelParameterError(
                f"measurement interval must be positive, got {self.interval_s}"
            )


class DischargeTimePowerEstimator:
    """Implements eq. (7) for a given node capacitor.

    Parameters
    ----------
    capacitor:
        The solar-node capacitor (only its capacitance is used; the
        estimator never mutates it).
    """

    def __init__(self, capacitor: Capacitor) -> None:
        self.capacitor = capacitor

    def estimate(
        self,
        upper_v: float,
        lower_v: float,
        interval_s: float,
        node_draw_power_w: float,
    ) -> PowerEstimate:
        """Estimate harvest power from one V-upper -> V-lower traversal.

        Parameters
        ----------
        upper_v / lower_v:
            The comparator thresholds crossed (``V1 > V2``).
        interval_s:
            Measured time between the two falling crossings.
        node_draw_power_w:
            Power the converter was drawing from the node during the
            interval (regulator input power at the commanded DVFS
            point) -- the known quantity of eq. (6).
        """
        if lower_v >= upper_v:
            raise OperatingRangeError(
                f"thresholds must satisfy V1 > V2, got {upper_v} <= {lower_v}"
            )
        if interval_s <= 0.0:
            raise OperatingRangeError(
                f"interval must be positive, got {interval_s}"
            )
        if node_draw_power_w < 0.0:
            raise OperatingRangeError(
                f"node draw must be >= 0, got {node_draw_power_w}"
            )
        released = self.capacitor.energy_between(upper_v, lower_v)
        input_power = node_draw_power_w - released / interval_s
        return PowerEstimate(
            input_power_w=max(0.0, input_power),
            interval_s=interval_s,
            upper_v=upper_v,
            lower_v=lower_v,
        )

    def expected_interval(
        self, upper_v: float, lower_v: float, input_power_w: float,
        node_draw_power_w: float,
    ) -> float:
        """Forward model: traversal time for a known harvest power.

        Used by tests (round-trip with :meth:`estimate`) and by the
        tracker to pick thresholds giving measurable intervals.  Raises
        when the node is not actually discharging (draw <= harvest).
        """
        deficit = node_draw_power_w - input_power_w
        if deficit <= 0.0:
            raise OperatingRangeError(
                "node is not discharging: draw must exceed harvest power"
            )
        return self.capacitor.energy_between(upper_v, lower_v) / deficit
