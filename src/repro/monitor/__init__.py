"""Board-level energy monitor substrate.

The paper's test PCB adds "multiple comparators with less than 0.1 uW
power ... to serve as a simplified energy monitor to the solar cells"
(Section VII).  Their outputs drive the MPP-tracking scheme of
Section VI-A: the time the solar-node voltage takes to fall between two
comparator thresholds reveals the input power (eqs. 6-7), which a
pre-characterised lookup table maps to the new MPP voltage and DVFS
setting.
"""

from repro.monitor.comparator import ThresholdComparator, ComparatorBank, CrossingEvent
from repro.monitor.current_sense import CurrentSenseEstimator
from repro.monitor.estimator import DischargeTimePowerEstimator, PowerEstimate
from repro.monitor.lut import MppLookupTable, MppEntry, build_mpp_lut

__all__ = [
    "ThresholdComparator",
    "ComparatorBank",
    "CrossingEvent",
    "CurrentSenseEstimator",
    "DischargeTimePowerEstimator",
    "PowerEstimate",
    "MppLookupTable",
    "MppEntry",
    "build_mpp_lut",
]
