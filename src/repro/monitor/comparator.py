"""Threshold comparators with hysteresis.

Models the sub-microwatt comparators on the paper's test PCB (Fig. 10):
each watches the solar-node voltage against one threshold (the V0, V1,
V2 levels of Fig. 8) and timestamps crossings.  Hysteresis prevents
chatter from simulation noise and converter ripple, exactly as a
physical comparator's built-in hysteresis does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ModelParameterError


@dataclass(frozen=True)
class CrossingEvent:
    """One timestamped threshold crossing."""

    time_s: float
    threshold_v: float
    direction: str  # "falling" or "rising"

    def __post_init__(self) -> None:
        if self.direction not in ("falling", "rising"):
            raise ModelParameterError(
                f"direction must be 'falling' or 'rising', got {self.direction!r}"
            )


class ThresholdComparator:
    """A single comparator watching one threshold.

    Feed it samples via :meth:`observe`; it returns a
    :class:`CrossingEvent` when the monitored voltage crosses the
    threshold (with hysteresis), else ``None``.

    Parameters
    ----------
    threshold_v:
        Nominal comparison level.
    hysteresis_v:
        Total hysteresis width: after a falling trip, the input must
        rise above ``threshold + hysteresis`` before a rising trip can
        occur, and vice versa.
    power_w:
        The comparator's own draw (the paper's are < 0.1 uW); exposed so
        system accounting can include monitor overhead.
    offset_v:
        Static input-referred offset: the comparator actually trips at
        ``threshold + offset`` while *reporting* the nominal threshold
        in its crossing events -- exactly how a real offset lies to the
        downstream estimator.  Zero for an ideal part.
    noise_sigma_v:
        Standard deviation of per-sample Gaussian input noise on the
        trip point.  Requires ``seed`` for deterministic replay.
    seed:
        Seed for the noise generator; :meth:`reset` re-seeds it so a
        rerun reproduces the identical noise sequence.
    """

    def __init__(
        self,
        threshold_v: float,
        hysteresis_v: float = 5e-3,
        power_w: float = 0.1e-6,
        offset_v: float = 0.0,
        noise_sigma_v: float = 0.0,
        seed: "int | None" = None,
    ) -> None:
        if threshold_v <= 0.0:
            raise ModelParameterError(
                f"threshold must be positive, got {threshold_v}"
            )
        if hysteresis_v < 0.0:
            raise ModelParameterError(
                f"hysteresis must be >= 0, got {hysteresis_v}"
            )
        if power_w < 0.0:
            raise ModelParameterError(f"power must be >= 0, got {power_w}")
        if noise_sigma_v < 0.0:
            raise ModelParameterError(
                f"noise sigma must be >= 0, got {noise_sigma_v}"
            )
        if noise_sigma_v > 0.0 and seed is None:
            raise ModelParameterError(
                "comparator noise needs a seed for deterministic replay"
            )
        self.threshold_v = threshold_v
        self.hysteresis_v = hysteresis_v
        self.power_w = power_w
        self.offset_v = offset_v
        self.noise_sigma_v = noise_sigma_v
        self.seed = seed
        self._rng = np.random.default_rng(seed) if seed is not None else None
        self._state: "bool | None" = None  # True = input above threshold

    def reset(self) -> None:
        """Forget the input state (e.g. at simulation restart)."""
        self._state = None
        if self.seed is not None:
            self._rng = np.random.default_rng(self.seed)

    @property
    def input_state(self) -> "bool | None":
        """Whether the last sample sat above the trip point.

        ``None`` until the first sample.  Exposed for the fleet
        engine's comparator lens, which mirrors this state to predict
        -- exactly -- which :meth:`observe` calls would change state or
        emit an event, and skips the rest (a no-op observe of a
        noiseless comparator has no side effects).
        """
        return self._state

    def _trip_voltage(self) -> float:
        """The threshold the comparator actually trips at this sample."""
        trip = self.threshold_v + self.offset_v
        if self.noise_sigma_v > 0.0 and self._rng is not None:
            trip += self.noise_sigma_v * float(self._rng.standard_normal())
        return trip

    def observe(self, time_s: float, voltage_v: float) -> "CrossingEvent | None":
        """Feed one sample; report a crossing if one occurred.

        Crossings always report the *nominal* threshold: the downstream
        estimator believes the design value even when offset or noise
        has moved the physical trip point.
        """
        trip = self._trip_voltage()
        if self._state is None:
            self._state = voltage_v >= trip
            return None
        if self._state and voltage_v < trip - 0.5 * self.hysteresis_v:
            self._state = False
            return CrossingEvent(time_s, self.threshold_v, "falling")
        if not self._state and voltage_v > trip + 0.5 * self.hysteresis_v:
            self._state = True
            return CrossingEvent(time_s, self.threshold_v, "rising")
        return None


class ComparatorBank:
    """The PCB's set of comparators observed together.

    Observing the bank fans one sample out to every comparator and
    collects all crossings, maintaining a bounded history for the
    estimator to consume.
    """

    def __init__(
        self,
        thresholds_v: Sequence[float],
        hysteresis_v: float = 5e-3,
        offsets_v: "Sequence[float] | None" = None,
        noise_sigma_v: float = 0.0,
        seed: "int | None" = None,
    ) -> None:
        if not thresholds_v:
            raise ModelParameterError("comparator bank needs at least one threshold")
        if len(set(thresholds_v)) != len(thresholds_v):
            raise ModelParameterError("comparator thresholds must be distinct")
        ordered = sorted(thresholds_v, reverse=True)
        if offsets_v is None:
            offsets = [0.0] * len(ordered)
        else:
            if len(offsets_v) != len(thresholds_v):
                raise ModelParameterError(
                    f"need one offset per threshold: "
                    f"{len(offsets_v)} offsets for {len(thresholds_v)} thresholds"
                )
            # Offsets are paired with thresholds in the caller's order,
            # then re-sorted alongside them (highest threshold first).
            paired = sorted(
                zip(thresholds_v, offsets_v), key=lambda p: p[0], reverse=True
            )
            offsets = [o for _, o in paired]
        self.comparators = [
            ThresholdComparator(
                t,
                hysteresis_v,
                offset_v=offset,
                noise_sigma_v=noise_sigma_v,
                seed=None if seed is None else seed + index,
            )
            for index, (t, offset) in enumerate(zip(ordered, offsets))
        ]
        self.history: List[CrossingEvent] = []

    @property
    def thresholds_v(self) -> "tuple[float, ...]":
        """Thresholds, highest first (the paper's V0 > V1 > V2 order)."""
        return tuple(c.threshold_v for c in self.comparators)

    @property
    def total_power_w(self) -> float:
        """Aggregate comparator draw for system accounting."""
        return sum(c.power_w for c in self.comparators)

    @property
    def noiseless(self) -> bool:
        """True when every comparator trips deterministically.

        A noiseless comparator's trip point is ``threshold + offset``
        for every sample, so its next transition is predictable from
        its mirrored state -- the property the fleet comparator lens
        needs.  Any noisy comparator makes the whole bank opaque (the
        noise stream must advance on every sample).
        """
        return all(c.noise_sigma_v == 0.0 for c in self.comparators)

    def reset(self) -> None:
        """Clear input states and crossing history."""
        for comparator in self.comparators:
            comparator.reset()
        self.history.clear()

    def observe(self, time_s: float, voltage_v: float) -> "list[CrossingEvent]":
        """Feed one sample to every comparator; return new crossings."""
        events = []
        for comparator in self.comparators:
            event = comparator.observe(time_s, voltage_v)
            if event is not None:
                events.append(event)
                self.history.append(event)
        return events

    def last_falling_interval(
        self, upper_v: float, lower_v: float
    ) -> "tuple[float, float] | None":
        """Times of the most recent falling crossings of two thresholds.

        Returns ``(t_upper, t_lower)`` for the latest falling crossing
        of ``lower_v`` preceded by a falling crossing of ``upper_v``, or
        ``None`` if that pair has not happened yet.  This is the ``t``
        measurement of the paper's eq. (7).
        """
        t_lower = None
        for event in reversed(self.history):
            if event.direction != "falling":
                continue
            if t_lower is None and event.threshold_v == lower_v:
                t_lower = event.time_s
                continue
            if t_lower is not None and event.threshold_v == upper_v:
                return (event.time_s, t_lower)
        return None
