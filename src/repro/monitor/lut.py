"""Pre-characterised power-to-MPP lookup table.

The paper: "A look-up table is used to map the measured power to
corresponding MPP point, so that DVFS is adjusted to operate around the
new MPP point when significant energy source changes occur."

The table is characterised offline from the cell model: for a grid of
irradiances, record the measurable quantity (MPP power, which eq. (7)
estimates) alongside the operating targets (MPP voltage and the
irradiance itself).  At runtime the tracker looks up the nearest entry
by estimated input power.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ModelParameterError
from repro.pv.cell import SingleDiodeCell
from repro.pv.mpp import find_mpp


@dataclass(frozen=True)
class MppEntry:
    """One characterised operating condition."""

    input_power_w: float
    mpp_voltage_v: float
    irradiance: float


class MppLookupTable:
    """Nearest / interpolated lookup from input power to MPP targets."""

    def __init__(self, entries: Sequence[MppEntry]) -> None:
        if len(entries) < 2:
            raise ModelParameterError("LUT needs at least two entries")
        ordered = sorted(entries, key=lambda e: e.input_power_w)
        powers = [e.input_power_w for e in ordered]
        if any(b <= a for a, b in zip(powers, powers[1:])):
            raise ModelParameterError("LUT entries must have distinct powers")
        self.entries = tuple(ordered)
        self._powers = powers

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def power_range_w(self) -> "tuple[float, float]":
        """Smallest and largest characterised input power."""
        return (self._powers[0], self._powers[-1])

    def nearest(self, input_power_w: float) -> MppEntry:
        """The characterised entry closest in input power."""
        if input_power_w < 0.0:
            raise ModelParameterError(
                f"input power must be >= 0, got {input_power_w}"
            )
        index = bisect_left(self._powers, input_power_w)
        if index == 0:
            return self.entries[0]
        if index == len(self.entries):
            return self.entries[-1]
        before = self.entries[index - 1]
        after = self.entries[index]
        if input_power_w - before.input_power_w <= after.input_power_w - input_power_w:
            return before
        return after

    def interpolate(self, input_power_w: float) -> MppEntry:
        """Linear interpolation between bracketing entries (clamped)."""
        if input_power_w < 0.0:
            raise ModelParameterError(
                f"input power must be >= 0, got {input_power_w}"
            )
        powers = np.array(self._powers)
        v = float(
            np.interp(
                input_power_w, powers, [e.mpp_voltage_v for e in self.entries]
            )
        )
        s = float(
            np.interp(input_power_w, powers, [e.irradiance for e in self.entries])
        )
        return MppEntry(
            input_power_w=float(np.clip(input_power_w, powers[0], powers[-1])),
            mpp_voltage_v=v,
            irradiance=s,
        )


def build_mpp_lut(
    cell: SingleDiodeCell,
    min_irradiance: float = 0.02,
    max_irradiance: float = 1.2,
    points: int = 24,
) -> MppLookupTable:
    """Characterise a LUT over an irradiance range (offline step).

    Irradiances are spaced geometrically, matching the logarithmic way
    ambient light varies between indoor and full-sun conditions.
    """
    if points < 2:
        raise ModelParameterError(f"need at least 2 points, got {points}")
    if not 0.0 < min_irradiance < max_irradiance:
        raise ModelParameterError(
            f"invalid irradiance range [{min_irradiance}, {max_irradiance}]"
        )
    entries = []
    for irradiance in np.geomspace(min_irradiance, max_irradiance, points):
        mpp = find_mpp(cell, float(irradiance))
        entries.append(
            MppEntry(
                input_power_w=mpp.power_w,
                mpp_voltage_v=mpp.voltage_v,
                irradiance=float(irradiance),
            )
        )
    return MppLookupTable(entries)
