"""Current-sensing power estimation -- the alternative the paper rejects.

Section VI-A argues for discharge-time estimation *against* the prior
art of measuring the harvester current directly (its ref [18]):
"Compared to current measurement, the proposed technique can be done
faster and is easily derived without additional circuitry or software."
To make that claim testable rather than rhetorical, this module models
the rejected alternative: a sense resistor in the harvester path read
by an ADC.

Costs the comparator scheme avoids, all modelled here:

* **insertion loss** -- the sense resistor drops `I²·Rs` continuously,
  whether or not anyone is measuring;
* **quantisation** -- an n-bit ADC over a fixed full scale floors the
  relative accuracy at low light exactly where tracking matters most;
* **acquisition power** -- the ADC + amplifier draw orders of magnitude
  more than the paper's sub-µW comparators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelParameterError, OperatingRangeError


@dataclass(frozen=True)
class CurrentSenseEstimator:
    """Sense-resistor + ADC input-power measurement.

    Parameters
    ----------
    sense_resistance_ohm:
        Series resistor in the harvester path.
    adc_bits:
        ADC resolution.
    full_scale_current_a:
        Current mapping to ADC full scale (sized for the brightest
        condition; everything dimmer uses fewer codes).
    acquisition_power_w:
        ADC + sense-amplifier draw while sampling (tens to hundreds of
        µW for a low-power SAR ADC -- versus < 0.1 µW per comparator).
    sample_time_s:
        Conversion time per reading.
    """

    sense_resistance_ohm: float = 1.0
    adc_bits: int = 10
    full_scale_current_a: float = 20e-3
    acquisition_power_w: float = 50e-6
    sample_time_s: float = 10e-6

    def __post_init__(self) -> None:
        if self.sense_resistance_ohm <= 0.0:
            raise ModelParameterError(
                f"sense resistance must be positive, got "
                f"{self.sense_resistance_ohm}"
            )
        if not 4 <= self.adc_bits <= 24:
            raise ModelParameterError(
                f"ADC bits must be in [4, 24], got {self.adc_bits}"
            )
        if self.full_scale_current_a <= 0.0:
            raise ModelParameterError(
                f"full scale must be positive, got {self.full_scale_current_a}"
            )
        if self.acquisition_power_w < 0.0:
            raise ModelParameterError(
                f"acquisition power must be >= 0, got "
                f"{self.acquisition_power_w}"
            )
        if self.sample_time_s <= 0.0:
            raise ModelParameterError(
                f"sample time must be positive, got {self.sample_time_s}"
            )

    @property
    def lsb_current_a(self) -> float:
        """One ADC code in amperes."""
        return self.full_scale_current_a / (2**self.adc_bits)

    def quantise(self, current_a: float) -> float:
        """The current as the ADC reports it (clipped, quantised)."""
        if current_a < 0.0:
            raise OperatingRangeError(
                f"sense current must be >= 0, got {current_a}"
            )
        clipped = min(current_a, self.full_scale_current_a)
        codes = round(clipped / self.lsb_current_a)
        return codes * self.lsb_current_a

    def insertion_loss_w(self, current_a: float) -> float:
        """Continuous `I²·Rs` dissipation in the sense resistor."""
        return current_a * current_a * self.sense_resistance_ohm

    def estimate_power(self, true_current_a: float, node_voltage_v: float) -> float:
        """One reading: ``V · I_quantised`` [W]."""
        if node_voltage_v <= 0.0:
            raise OperatingRangeError(
                f"node voltage must be positive, got {node_voltage_v}"
            )
        return node_voltage_v * self.quantise(true_current_a)

    def relative_error(self, true_current_a: float) -> float:
        """Worst-case quantisation error as a fraction of the reading."""
        if true_current_a <= 0.0:
            return float("inf")
        return 0.5 * self.lsb_current_a / true_current_a

    def measurement_energy_j(self, samples: int = 1) -> float:
        """Energy spent acquiring ``samples`` readings."""
        if samples < 1:
            raise ModelParameterError(f"samples must be >= 1, got {samples}")
        return self.acquisition_power_w * self.sample_time_s * samples

    def average_overhead_w(
        self, current_a: float, sample_rate_hz: float
    ) -> float:
        """Total steady-state cost: insertion loss + duty-cycled ADC."""
        if sample_rate_hz < 0.0:
            raise ModelParameterError(
                f"sample rate must be >= 0, got {sample_rate_hz}"
            )
        duty = min(sample_rate_hz * self.sample_time_s, 1.0)
        return self.insertion_loss_w(current_a) + self.acquisition_power_w * duty
