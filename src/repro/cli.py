"""Command-line interface.

Exposes the library's main entry points to a terminal user::

    python -m repro info
    python -m repro plan --policy holistic-performance --irradiance 0.5
    python -m repro mep --regulator sc
    python -m repro throughput --irradiances 1.0 0.5 0.25 0.1
    python -m repro track --dim-to 0.3
    python -m repro sprint --deadline-ms 10 --dim-to 0.35
    python -m repro faults --runs 50 --scheme both
    python -m repro trace fig8 --out fig8_trace.json
    python -m repro bench --rounds 3

Every command builds the paper's demonstration system and prints plain
text tables, so the paper's results are reachable without writing any
Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.mep import HolisticMepOptimizer
from repro.core.policies import Policy
from repro.core.scheduler import HolisticEnergyManager
from repro.core.system import paper_system
from repro.errors import ReproError
from repro.experiments.report import format_table
from repro.processor.workloads import image_frame_workload


def _cmd_info(args: argparse.Namespace) -> int:
    system = paper_system()
    mpp = system.mpp(args.irradiance)
    voc = system.cell.open_circuit_voltage(args.irradiance)
    isc = system.cell.short_circuit_current(args.irradiance)
    rows = [
        ("irradiance (1.0 = full sun)", args.irradiance),
        ("cell Isc [mA]", isc * 1e3),
        ("cell Voc [V]", voc),
        ("cell MPP [mW @ V]", f"{mpp.power_w * 1e3:.2f} @ {mpp.voltage_v:.2f}"),
        ("node capacitance [uF]", system.node_capacitance_f * 1e6),
        ("converters", ", ".join(system.converter_names)),
        (
            "comparator thresholds [V]",
            ", ".join(f"{t:.2f}" for t in system.comparator_thresholds_v),
        ),
        (
            "processor window [V]",
            f"{system.processor.min_operating_v:.2f}-"
            f"{system.processor.max_operating_v:.2f}",
        ),
        (
            "conventional MEP [V]",
            system.processor.conventional_mep().voltage_v,
        ),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    system = paper_system()
    manager = HolisticEnergyManager(system, regulator_name=args.regulator)
    policies = (
        list(Policy) if args.policy == "all" else [Policy(args.policy)]
    )
    workload = image_frame_workload(args.deadline_ms * 1e-3)
    rows = []
    for policy in policies:
        plan = manager.plan(policy, args.irradiance, workload=workload)
        if plan.sprint_plan is not None:
            sprint = plan.sprint_plan
            rows.append(
                (
                    policy.value,
                    f"{sprint.output_voltage_v:.3f}",
                    f"{sprint.slow_frequency_hz / 1e6:.0f}-"
                    f"{sprint.fast_frequency_hz / 1e6:.0f}",
                    "(sprint)",
                    f"bypass<{sprint.bypass_below_v:.2f}V",
                )
            )
            continue
        point = plan.operating_point
        rows.append(
            (
                policy.value,
                f"{point.processor_voltage_v:.3f}",
                f"{point.frequency_hz / 1e6:.0f}",
                f"{point.delivered_power_w * 1e3:.2f}",
                "bypass" if point.bypassed else plan.regulator_name,
            )
        )
    print(
        format_table(
            ["policy", "Vdd [V]", "clock [MHz]", "P core [mW]", "path"], rows
        )
    )
    return 0


def _cmd_mep(args: argparse.Namespace) -> int:
    system = paper_system()
    optimizer = HolisticMepOptimizer(system)
    comparison = optimizer.compare(args.regulator)
    rows = [
        ("conventional MEP [V]", comparison.conventional.voltage_v),
        (
            "conventional energy/cycle [pJ]",
            comparison.conventional.energy_per_cycle_j * 1e12,
        ),
        ("holistic MEP [V]", comparison.holistic.voltage_v),
        (
            "holistic source energy/cycle [pJ]",
            comparison.holistic.energy_per_cycle_j * 1e12,
        ),
        (
            "conventional MEP through regulator [pJ]",
            comparison.conventional_through_regulator_j * 1e12,
        ),
        ("voltage shift [V]", comparison.voltage_shift_v),
        ("energy saving", f"{comparison.energy_saving_fraction:.1%}"),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import throughput_sweep

    points = throughput_sweep(
        args.irradiances, args.regulator, workers=args.workers
    )
    rows = []
    for point in points:
        if point.feasible:
            rows.append(
                (
                    point.irradiance,
                    f"{point.jobs_per_second:.1f}",
                    f"{point.duty_fraction:.2f}",
                    f"{point.processor_voltage_v:.2f}",
                    point.path,
                )
            )
        else:
            rows.append((point.irradiance, "0.0", "-", "-", "infeasible"))
    print(
        format_table(
            ["irradiance", "frames/s", "duty", "Vdd [V]", "path"], rows
        )
    )
    return 0


def _cmd_track(args: argparse.Namespace) -> int:
    from repro.experiments.fig8_mppt import fig8_mppt_tracking

    result = fig8_mppt_tracking(before=args.from_irr, after=args.dim_to)
    rows = [
        ("true Pin after dim [mW]", result.true_power_w * 1e3),
        ("estimated Pin [mW]", result.estimated_power_w * 1e3),
        ("estimate error", f"{result.estimate_error:.1%}"),
        (
            "reaction latency [ms]",
            (result.reaction_latency_s or float("nan")) * 1e3,
        ),
        ("settled node voltage [V]", result.settled_node_voltage_v),
        ("true MPP voltage [V]", result.true_mpp_voltage_v),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_sprint(args: argparse.Namespace) -> int:
    from repro.experiments.fig11_demo import fig11b_sprint_waveform

    demo = fig11b_sprint_waveform(
        deadline_s=args.deadline_ms * 1e-3, dim_to=args.dim_to
    )
    rows = [
        ("bypass extension [ms]", demo.bypass_extension_s * 1e3),
        ("bypass extension", f"{demo.bypass_extension_fraction:+.1%}"),
        ("completed with bypass", demo.completed_with_bypass),
        (
            "completed regulated-only",
            demo.completed_without_bypass_before_stall,
        ),
        (
            "sprint intake gain (first-order)",
            f"{demo.analytic_sprint_energy_gain:+.1%}",
        ),
        (
            "sprint intake gain (closed loop)",
            f"{demo.simulated_sprint_energy_gain:+.1%}",
        ),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_admit(args: argparse.Namespace) -> int:
    from repro.core.admission import AdmissionController, PeriodicTask

    system = paper_system()
    controller = AdmissionController(system, args.regulator, margin=args.margin)
    tasks = [
        PeriodicTask(
            workload=image_frame_workload(None),
            period_s=1.0 / args.frame_rate,
            max_latency_s=min(args.latency_ms * 1e-3, 1.0 / args.frame_rate),
        )
    ]
    report = controller.evaluate(tasks, args.irradiance)
    rows = [
        ("irradiance", args.irradiance),
        ("harvest budget [mW]", report.harvest_power_w * 1e3),
        ("frame rate [1/s]", args.frame_rate),
        ("utilisation", f"{report.total_utilisation:.1%}"),
        ("admitted", report.admitted),
        ("headroom [mW]", report.headroom_w * 1e3),
    ]
    try:
        rows.append(
            ("minimum irradiance", f"{controller.minimum_irradiance(tasks):.3f}")
        )
    except ReproError:
        rows.append(("minimum irradiance", "infeasible at any light"))
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.faults import (
        CampaignConfig,
        FaultSpec,
        IntermittentCampaignConfig,
        run_intermittent_campaign,
        run_transient_campaign,
    )

    from repro.parallel.progress import ProgressReporter

    spec = FaultSpec(
        comparator_offset_sigma_v=args.offset_mv * 1e-3,
        flicker_depth_max=args.flicker_depth,
    )
    schemes = (
        ("holistic", "fixed") if args.scheme == "both" else (args.scheme,)
    )

    def reporter(label: str) -> "ProgressReporter | None":
        if args.quiet or not args.progress:
            return None
        return ProgressReporter(
            sink=lambda line: print(line, file=sys.stderr), label=label
        )

    resilient = (
        args.resume is not None
        or args.max_retries is not None
        or args.run_timeout is not None
    )

    def resilience_for(journal_name: str) -> "object | None":
        """Supervised-execution config, or None for the legacy path."""
        if not resilient:
            return None
        from pathlib import Path

        from repro.resilience import ResilienceConfig, RetryPolicy

        journal_path = None
        if args.resume is not None:
            journal_path = str(Path(args.resume) / f"{journal_name}.jsonl")
        policy = RetryPolicy(
            max_retries=(
                args.max_retries if args.max_retries is not None else 2
            ),
            run_timeout_s=args.run_timeout,
        )
        return ResilienceConfig(policy=policy, journal_path=journal_path)

    def report_quarantine(label: str, summary: "object") -> None:
        failures = getattr(summary, "failed_runs", ())
        if failures:
            detail = "; ".join(
                f"seed index {f.index}: {f.kind} after {f.attempts} "
                f"attempt(s) ({f.error})"
                for f in failures
            )
            print(
                f"{label}: {len(failures)} run(s) quarantined -- {detail}",
                file=sys.stderr,
            )

    summaries = {}
    for scheme in schemes:
        config = CampaignConfig(
            runs=args.runs,
            base_seed=args.seed,
            scheme=scheme,
            duration_s=args.duration_ms * 1e-3,
            dim_to=args.dim_to,
        )
        session = None
        if args.telemetry_out:
            from repro.telemetry import TelemetrySession

            session = TelemetrySession()
        summaries[scheme] = run_transient_campaign(
            spec,
            config,
            workers=args.workers,
            chunk_size=args.chunk_size,
            progress=reporter(f"faults[{scheme}]"),
            telemetry=session,
            resilience=resilience_for(f"journal_{scheme}"),
        )
        report_quarantine(f"faults[{scheme}]", summaries[scheme])
    if args.telemetry_out:
        for path in _write_campaign_telemetry(
            args.telemetry_out, schemes, summaries
        ):
            print(f"wrote {path}")
    keys = list(next(iter(summaries.values())).as_dict())
    rows = [
        tuple([key] + [f"{summaries[s].as_dict()[key]:.4g}" for s in schemes])
        for key in keys
    ]
    print(format_table(["metric"] + list(schemes), rows))

    if args.intermittent:
        inter = run_intermittent_campaign(
            replace(spec, checkpoint_corruption_rate=args.corruption_rate),
            IntermittentCampaignConfig(runs=args.runs, base_seed=args.seed),
            workers=args.workers,
            chunk_size=args.chunk_size,
            progress=reporter("faults[intermittent]"),
            resilience=resilience_for("journal_intermittent"),
        )
        report_quarantine("faults[intermittent]", inter)
        rows = [
            (key, f"{value:.4g}")
            for key, value in inter.as_dict().items()
        ]
        print()
        print(format_table(["intermittent metric", "value"], rows))
    return 0


def _write_campaign_telemetry(
    out_dir: str, schemes: "tuple[str, ...]", summaries: dict
) -> "list[str]":
    """Write per-scheme campaign metrics JSON files; returns the paths.

    Each file holds the campaign aggregate plus the per-run metric
    snapshots keyed by ``run_id``.  Only the deterministic sim-derived
    metrics are written (never wall-clock profiling), so the files are
    byte-identical at any ``--workers`` count.
    """
    import json
    from pathlib import Path

    from repro.telemetry.aggregate import metrics_tuple_as_dict

    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for scheme in schemes:
        summary = summaries[scheme]
        payload = {
            "scheme": scheme,
            "runs": summary.runs,
            "aggregate": metrics_tuple_as_dict(summary.metrics or ()),
            "per_run": {
                record.run_id: metrics_tuple_as_dict(record.metrics or ())
                for record in summary.records
            },
        }
        path = target / f"{scheme}_metrics.json"
        path.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )
        written.append(str(path))
    return written


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import TelemetrySession
    from repro.telemetry.export import write_chrome_trace, write_jsonl

    session = TelemetrySession()
    if args.scenario == "fig8":
        from repro.experiments.fig8_mppt import fig8_mppt_tracking

        fig8_mppt_tracking(after=args.dim_to, telemetry=session)
    elif args.scenario == "sprint":
        from repro.experiments.fig9_sprint import fig9b_sprint_gains

        fig9b_sprint_gains(
            deadline_s=args.deadline_ms * 1e-3,
            dim_to=args.dim_to,
            telemetry=session,
        )
    else:  # campaign: replay one seeded faulted run with full tracing
        from repro.faults import FaultSpec, CampaignConfig
        from repro.faults.campaign import replay_transient_run

        spec = FaultSpec(
            comparator_offset_sigma_v=30e-3, flicker_depth_max=0.5
        )
        replay_transient_run(
            spec,
            CampaignConfig(dim_to=args.dim_to),
            args.seed,
            telemetry=session,
        )

    metrics = session.metrics.as_dict()
    trace_path = write_chrome_trace(args.out, session.tracer, metrics)
    print(f"wrote {trace_path}")
    if args.jsonl:
        jsonl_path = write_jsonl(args.jsonl, session.tracer, metrics)
        print(f"wrote {jsonl_path}")
    rows = [
        ("spans", len(session.tracer.spans)),
        ("events", len(session.tracer.events)),
    ] + [(name, f"{value:.6g}") for name, value in sorted(metrics.items())]
    print(format_table(["telemetry", "value"], rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.planner:
        return _cmd_bench_planner(args)
    if args.fleet:
        return _cmd_bench_fleet(args)
    from repro.perf.benchmark import run_hotpath_benchmark, write_report

    report = run_hotpath_benchmark(rounds=args.rounds, smoke=args.smoke)
    path = write_report(report, args.out)
    print(f"wrote {path}")
    rows = [
        (
            timing.variant,
            f"{timing.steps_per_s:,.0f}",
            f"{timing.best_wall_s * 1e3:.1f}",
        )
        for timing in report.timings
    ] + [
        ("default speedup", f"{report.speedup_default:.2f}x", ""),
        ("fast_pv speedup", f"{report.speedup_fast_pv:.2f}x", ""),
        ("default bit-identical", str(report.default_bit_identical), ""),
        (
            "fast_pv max |dV node| [V]",
            f"{report.fast_pv_max_node_voltage_error_v:.2e}",
            "",
        ),
    ]
    print(format_table(["variant", "steps/s", "best wall [ms]"], rows))
    if not report.default_bit_identical:
        print(
            "error: default path diverged from the reference solver",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.bench import run_fleet_benchmark, write_report

    report = run_fleet_benchmark(rounds=args.rounds, smoke=args.smoke)
    out = args.out
    if out == "BENCH_engine_hotpath.json":
        out = "BENCH_fleet_engine.json"
    path = write_report(report, out)
    print(f"wrote {path}")
    rows = [
        (
            str(timing.batch),
            f"{timing.fleet_steps_per_s:,.0f}",
            f"{timing.scalar_steps_per_s:,.0f}",
            f"{timing.speedup:.2f}x",
        )
        for timing in report.timings
    ] + [
        (
            "bit-identical (batch 1)",
            str(report.batch1_bit_identical),
            "",
            "",
        ),
        (
            f"target ({report.target_speedup:.0f}x)",
            "asserted" if report.speedup_asserted else "recorded only",
            "",
            "",
        ),
    ]
    print(
        format_table(
            ["batch", "fleet steps/s", "scalar steps/s", "speedup"], rows
        )
    )
    top = report.timings[-1]
    print(
        format_table(
            ["step-loop phase", f"wall s (batch {top.batch})"],
            [
                (phase, f"{wall:.3f}")
                for phase, wall in sorted(top.fleet_phase_wall_s.items())
            ],
        )
    )
    if not report.batch1_bit_identical:
        print(
            "error: fleet engine diverged from the scalar engine",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_planner(args: argparse.Namespace) -> int:
    from repro.planner.bench import run_planner_benchmark, write_report

    report = run_planner_benchmark(rounds=args.rounds, smoke=args.smoke)
    out = args.out
    if out == "BENCH_engine_hotpath.json":
        out = "BENCH_planner.json"
    path = write_report(report, out)
    print(f"wrote {path}")
    rows = []
    for scenario in report.scenarios:
        model = scenario.model
        rows.append(
            (
                scenario.name,
                f"{model.oracle_cycles / 1e6:.2f}M",
                f"{model.receding_cycles / 1e6:.2f}M",
                f"{model.greedy_cycles / 1e6:.2f}M",
                str(model.bounds_hold),
                str(sum(leg.deadline_missed for leg in scenario.legs)),
            )
        )
    rows.append(
        (
            "bit-identical (batch 1)",
            str(report.batch1_bit_identical),
            "",
            "",
            "",
            "",
        )
    )
    rows.append(
        (
            "solver cells/s",
            f"{report.solver_cells_per_s:,.0f}",
            "",
            "",
            "",
            "",
        )
    )
    print(
        format_table(
            [
                "scenario",
                "oracle",
                "receding",
                "greedy",
                "bounds",
                "misses",
            ],
            rows,
        )
    )
    if not report.all_bounds_hold:
        print(
            "error: oracle-bounds chain violated in the model world",
            file=sys.stderr,
        )
        return 1
    if not report.batch1_bit_identical:
        print(
            "error: fleet batch-of-1 diverged from the scalar engine",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_planner(args: argparse.Namespace) -> int:
    from repro.core.system import paper_system
    from repro.planner import PlannerSpec, bin_trace, build_actions, solve_plan
    from repro.pv.traces import step_trace

    system = paper_system()
    duration_s = args.duration_ms * 1e-3
    trace = step_trace(
        args.bright, args.dim_to, args.dim_ms * 1e-3, duration_s
    )
    spec = PlannerSpec(slot_s=args.slot_ms * 1e-3, levels=args.levels)
    actions, grid = build_actions(system, args.regulator, spec)
    forecast = bin_trace(trace, system, spec.slot_s, duration_s=duration_s)
    initial = 0.5 * system.node_capacitance_f * args.initial_v**2
    plan = solve_plan(
        forecast.income_j, actions, grid, initial, forecast.slot_s
    )
    # Print the schedule compressed into runs of identical actions.
    rows = []
    span_start = 0
    for index in range(1, plan.slots + 1):
        if (
            index < plan.slots
            and plan.steps[index].action is plan.steps[span_start].action
        ):
            continue
        first = plan.steps[span_start]
        rows.append(
            (
                f"{first.start_s * 1e3:.1f}",
                str(index - span_start),
                first.action.name,
                f"{first.energy_before_j * 1e6:.1f}",
                f"{plan.steps[index - 1].cumulative_cycles / 1e6:.2f}M",
            )
        )
        span_start = index
    print(
        format_table(
            ["t [ms]", "slots", "action", "E before [uJ]", "cycles"], rows
        )
    )
    summary = [
        ("expected cycles", f"{plan.expected_cycles / 1e6:.2f}M"),
        ("final energy [uJ]", f"{plan.final_energy_j * 1e6:.1f}"),
        ("grid step [uJ]", f"{grid.step_j * 1e6:.2f}"),
        ("DP cells", f"{plan.cells:,}"),
    ]
    print(format_table(["quantity", "value"], summary))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import lint_command

    return lint_command(args)


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.export import FAST_FIGURES, FIGURE_DRIVERS, export_all

    figures = tuple(args.figures) if args.figures else FAST_FIGURES
    unknown = [f for f in figures if f not in FIGURE_DRIVERS]
    if unknown:
        print(
            f"error: unknown figures {unknown}; available: "
            f"{sorted(FIGURE_DRIVERS)}",
            file=sys.stderr,
        )
        return 1
    written = export_all(args.out, figures=figures)
    for path in written:
        print(path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Holistic energy management for battery-less "
            "energy-harvesting SoCs (SOCC 2018 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="system summary at an irradiance")
    p_info.add_argument("--irradiance", type=float, default=1.0)
    p_info.set_defaults(func=_cmd_info)

    p_plan = sub.add_parser("plan", help="operating plan for a policy")
    p_plan.add_argument(
        "--policy",
        default="all",
        choices=["all"] + [p.value for p in Policy],
    )
    p_plan.add_argument("--irradiance", type=float, default=1.0)
    p_plan.add_argument("--regulator", default="sc",
                        choices=["sc", "buck", "ldo"])
    p_plan.add_argument("--deadline-ms", type=float, default=15.0)
    p_plan.set_defaults(func=_cmd_plan)

    p_mep = sub.add_parser("mep", help="conventional vs holistic MEP")
    p_mep.add_argument("--regulator", default="sc",
                       choices=["sc", "buck", "ldo"])
    p_mep.set_defaults(func=_cmd_mep)

    p_tp = sub.add_parser(
        "throughput", help="sustainable frame rate per irradiance"
    )
    p_tp.add_argument(
        "--irradiances", type=float, nargs="+",
        default=[1.0, 0.5, 0.25, 0.1],
    )
    p_tp.add_argument("--regulator", default="sc",
                      choices=["sc", "buck", "ldo"])
    p_tp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the irradiance sweep",
    )
    p_tp.set_defaults(func=_cmd_throughput)

    p_track = sub.add_parser(
        "track", help="run the Fig. 8 MPP-tracking scenario"
    )
    p_track.add_argument("--from-irr", type=float, default=1.0)
    p_track.add_argument("--dim-to", type=float, default=0.3)
    p_track.set_defaults(func=_cmd_track)

    p_sprint = sub.add_parser(
        "sprint", help="run the Fig. 11(b) sprint/bypass scenario"
    )
    p_sprint.add_argument("--deadline-ms", type=float, default=10.0)
    p_sprint.add_argument("--dim-to", type=float, default=0.35)
    p_sprint.set_defaults(func=_cmd_sprint)

    p_admit = sub.add_parser(
        "admit", help="energy admission test for a periodic frame rate"
    )
    p_admit.add_argument("--frame-rate", type=float, default=10.0)
    p_admit.add_argument("--latency-ms", type=float, default=25.0)
    p_admit.add_argument("--irradiance", type=float, default=0.5)
    p_admit.add_argument("--margin", type=float, default=0.1)
    p_admit.add_argument("--regulator", default="sc",
                         choices=["sc", "buck", "ldo"])
    p_admit.set_defaults(func=_cmd_admit)

    p_faults = sub.add_parser(
        "faults", help="Monte Carlo fault-injection robustness campaign"
    )
    p_faults.add_argument("--runs", type=int, default=50)
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument(
        "--scheme", default="holistic",
        choices=["holistic", "fixed", "planner", "oracle", "both"],
        help="controller scheme ('both' compares holistic vs fixed; "
        "'planner'/'oracle' run the DP energy planner)",
    )
    p_faults.add_argument("--duration-ms", type=float, default=80.0)
    p_faults.add_argument("--dim-to", type=float, default=0.35)
    p_faults.add_argument(
        "--offset-mv", type=float, default=30.0,
        help="comparator offset sigma [mV]",
    )
    p_faults.add_argument(
        "--flicker-depth", type=float, default=0.5,
        help="maximum light flicker depth (0..1)",
    )
    p_faults.add_argument(
        "--intermittent", action="store_true",
        help="also run the checkpointed intermittent-runtime campaign",
    )
    p_faults.add_argument(
        "--corruption-rate", type=float, default=0.5,
        help="checkpoint bit-flip probability for --intermittent",
    )
    p_faults.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the campaign (1 = serial; results "
        "are bit-identical at any worker count)",
    )
    p_faults.add_argument(
        "--chunk-size", type=int, default=None,
        help="seeds per worker dispatch (default: auto load-balance)",
    )
    p_faults.add_argument(
        "--progress", action="store_true",
        help="report runs/s, ETA and worker utilization on stderr",
    )
    p_faults.add_argument(
        "--quiet", action="store_true",
        help="suppress progress reporting (overrides --progress)",
    )
    p_faults.add_argument(
        "--telemetry-out", default=None, metavar="DIR",
        help="record per-run telemetry metrics and write per-scheme "
        "aggregate JSON files into DIR",
    )
    p_faults.add_argument(
        "--resume", default=None, metavar="DIR",
        help="journal completed runs into DIR and resume from it after "
        "an interruption (summaries are bit-identical to an "
        "uninterrupted campaign); enables supervised execution",
    )
    p_faults.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-dispatch a failing run up to N times before "
        "quarantining it (default 2); enables supervised execution",
    )
    p_faults.add_argument(
        "--run-timeout", type=float, default=None, metavar="S",
        help="per-run watchdog deadline in seconds -- a hung worker is "
        "killed and its runs re-dispatched; enables supervised "
        "execution",
    )
    p_faults.set_defaults(func=_cmd_faults)

    p_trace = sub.add_parser(
        "trace",
        help="run an instrumented scenario and export its telemetry "
        "trace (Chrome trace-event JSON, optional JSONL)",
    )
    p_trace.add_argument(
        "scenario", choices=["fig8", "sprint", "campaign"],
        help="fig8 = MPP-tracking dim, sprint = Fig. 9(b) deadline "
        "sprint, campaign = replay one faulted campaign seed",
    )
    p_trace.add_argument(
        "--out", default="trace.json",
        help="Chrome trace-event JSON output path (chrome://tracing "
        "or ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the JSONL event log here",
    )
    p_trace.add_argument("--dim-to", type=float, default=0.3)
    p_trace.add_argument("--deadline-ms", type=float, default=10.0)
    p_trace.add_argument(
        "--seed", type=int, default=1,
        help="campaign seed to replay (scenario=campaign)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="engine hot-path steps/s benchmark (reference vs default "
        "vs fast_pv on the Fig. 8 workload)",
    )
    p_bench.add_argument(
        "--rounds", type=int, default=3,
        help="timed runs per variant (best wall time is reported)",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="short CI-sized run; correctness still measured on real runs",
    )
    p_bench.add_argument(
        "--out", default="BENCH_engine_hotpath.json",
        help="report JSON output path (--fleet defaults to "
        "BENCH_fleet_engine.json)",
    )
    p_bench.add_argument(
        "--fleet", action="store_true",
        help="benchmark the batched fleet engine against N scalar runs "
        "(aggregate steps/s at batch sizes 1/16/128/1024)",
    )
    p_bench.add_argument(
        "--planner", action="store_true",
        help="benchmark the DP energy planner: planned vs paper "
        "heuristic vs oracle across the scenario matrix "
        "(writes BENCH_planner.json)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_planner = sub.add_parser(
        "planner",
        help="solve and print a DP energy schedule for a dim-step scenario",
    )
    p_planner.add_argument(
        "--bright", type=float, default=0.35,
        help="irradiance before the dim step [suns]",
    )
    p_planner.add_argument(
        "--dim-to", type=float, default=0.12,
        help="irradiance after the dim step [suns]",
    )
    p_planner.add_argument(
        "--dim-ms", type=float, default=24.0,
        help="time of the dim step [ms]",
    )
    p_planner.add_argument("--duration-ms", type=float, default=80.0)
    p_planner.add_argument(
        "--slot-ms", type=float, default=2.0, help="DP slot width [ms]"
    )
    p_planner.add_argument(
        "--levels", type=int, default=192,
        help="stored-energy grid resolution",
    )
    p_planner.add_argument("--initial-v", type=float, default=1.2)
    p_planner.add_argument("--regulator", default="sc")
    p_planner.set_defaults(func=_cmd_planner)

    p_lint = sub.add_parser(
        "lint",
        help="domain-aware static analysis (determinism, units, spawn-safety)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=_cmd_lint)

    p_figures = sub.add_parser(
        "figures", help="export figure data as JSON for plotting"
    )
    p_figures.add_argument("--out", default="figures-json")
    p_figures.add_argument(
        "--figures", nargs="*",
        help="figure ids (default: all non-transient figures)",
    )
    p_figures.set_defaults(func=_cmd_figures)

    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
