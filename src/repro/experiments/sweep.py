"""Parallel sweep drivers.

The experiment layer's sweeps (sustainable throughput across
irradiance, the Fig. 7(a) light sweep) loop over independent operating
conditions -- exactly the shape :mod:`repro.parallel` handles.  Each
sweep point is computed by a module-level task that characterises the
paper system once per worker, and the executor's ordered reduce keeps
the result list identical to the serial loop at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence

from repro.core.duty_cycle import DutyCycleScheduler
from repro.errors import ReproError
from repro.parallel.cache import characterized_system
from repro.parallel.executor import run_sharded
from repro.processor.workloads import image_frame_workload


@dataclass(frozen=True)
class ThroughputPoint:
    """Sustainable frame-processing rate at one irradiance.

    ``feasible`` is False when no operating point closes the energy
    budget at this light level; the rate fields are zero/NaN then.
    """

    irradiance: float
    feasible: bool
    jobs_per_second: float
    duty_fraction: float
    processor_voltage_v: float
    path: str


def _throughput_point(
    irradiance: float, *, regulator_name: str
) -> ThroughputPoint:
    """One sweep point (process-pool task; characterises once/worker)."""
    system, _ = characterized_system()
    scheduler = DutyCycleScheduler(system, regulator_name)
    workload = image_frame_workload(None)
    try:
        rate = scheduler.sustainable_rate(workload, irradiance)
    except ReproError:
        return ThroughputPoint(
            irradiance=irradiance,
            feasible=False,
            jobs_per_second=0.0,
            duty_fraction=float("nan"),
            processor_voltage_v=float("nan"),
            path="infeasible",
        )
    return ThroughputPoint(
        irradiance=irradiance,
        feasible=True,
        jobs_per_second=rate.jobs_per_second,
        duty_fraction=rate.duty_fraction,
        processor_voltage_v=rate.operating_point.processor_voltage_v,
        path="bypass" if rate.operating_point.bypassed else regulator_name,
    )


def throughput_sweep(
    irradiances: Sequence[float],
    regulator_name: str = "sc",
    *,
    workers: int = 1,
    chunk_size: "int | None" = None,
    progress: Optional[object] = None,
) -> "list[ThroughputPoint]":
    """Sustainable frame rate per irradiance, optionally fanned out.

    Results come back in the order of ``irradiances`` regardless of
    worker count (ordered reduce), and every point is a deterministic
    function of its irradiance -- the parallel sweep is bit-identical
    to the serial one.
    """
    return run_sharded(
        partial(_throughput_point, regulator_name=regulator_name),
        list(irradiances),
        workers=workers,
        chunk_size=chunk_size,
        progress=progress,
    )
