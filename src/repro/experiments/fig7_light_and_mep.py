"""Fig. 7 -- (a) regulated output power under variable light, and
(b) the holistic minimum energy point.

(a) For 100% / 50% / 25% of solar output, compare the SC regulator's
    deliverable output power against the raw cell's power at matched
    processor voltages.  At strong light regulation wins 20-40%; at a
    quarter light the converter overhead makes the regulated output
    ~10-25% *worse* than the raw cell in the usable voltage window, so
    bypassing is best -- the paper's low-light rule.

(b) Source-referred energy-per-cycle curves for each converter versus
    the conventional (processor-only) MEP: the minimum shifts up in
    voltage and operating at the conventional MEP through a converter
    wastes up to ~30% energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.mep import HolisticMepOptimizer, MepComparison
from repro.core.operating_point import OperatingPointOptimizer
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.parallel.cache import characterized_system
from repro.parallel.executor import run_sharded

#: Voltage window in which the processor realistically operates for
#: the Fig. 7(a) matched-voltage comparison.
COMPARISON_WINDOW_V = (0.55, 0.80)


@dataclass(frozen=True)
class LightSweepEntry:
    """One light condition of Fig. 7(a)."""

    irradiance: float
    voltage_v: np.ndarray
    raw_power_w: np.ndarray
    regulated_power_w: np.ndarray
    #: Mean regulated/raw ratio - 1 within the comparison window.
    window_gain: float


def _light_sweep_entry(
    irradiance: float,
    *,
    regulator_name: str,
    points: int,
    system: "EnergyHarvestingSoC | None" = None,
) -> LightSweepEntry:
    """One Fig. 7(a) light condition (spawn-safe process-pool task)."""
    if system is None:
        system, _ = characterized_system()
    optimizer = OperatingPointOptimizer(system)
    lo, hi = COMPARISON_WINDOW_V
    regulator = system.regulator(regulator_name)
    voltages = np.linspace(
        regulator.min_output_v,
        min(regulator.max_output_v, system.mpp(irradiance).voltage_v),
        points,
    )
    _, regulated = optimizer.output_power_curve(
        regulator_name, irradiance, voltages
    )
    raw = np.asarray(system.cell.power(voltages, irradiance))
    window = (voltages >= lo) & (voltages <= hi) & np.isfinite(regulated)
    if np.any(window):
        gain = float(np.mean(regulated[window] / raw[window])) - 1.0
    else:
        gain = float("nan")
    return LightSweepEntry(
        irradiance=irradiance,
        voltage_v=voltages,
        raw_power_w=raw,
        regulated_power_w=regulated,
        window_gain=gain,
    )


def fig7a_light_sweep(
    system: "EnergyHarvestingSoC | None" = None,
    regulator_name: str = "sc",
    irradiances: "tuple[float, ...]" = (1.0, 0.5, 0.25),
    points: int = 120,
    workers: int = 1,
    chunk_size: "int | None" = None,
) -> "list[LightSweepEntry]":
    """The Fig. 7(a) curves: regulated out-power vs raw cell power.

    ``workers>1`` fans the irradiance points across worker processes
    (each characterising the paper system once); entries come back in
    ``irradiances`` order either way.  An explicitly supplied
    ``system`` pins execution to the serial path -- live objects do
    not cross the process boundary.
    """
    if system is not None:
        return [
            _light_sweep_entry(
                irradiance,
                regulator_name=regulator_name,
                points=points,
                system=system,
            )
            for irradiance in irradiances
        ]
    return run_sharded(
        partial(
            _light_sweep_entry, regulator_name=regulator_name, points=points
        ),
        list(irradiances),
        workers=workers,
        chunk_size=chunk_size,
    )


@dataclass(frozen=True)
class MepStudy:
    """Fig. 7(b): per-converter energy curves and MEP comparisons."""

    voltage_v: np.ndarray
    conventional_energy_j: np.ndarray
    curves: "dict[str, np.ndarray]"
    comparisons: "dict[str, MepComparison]"


def fig7b_mep_comparison(
    system: "EnergyHarvestingSoC | None" = None,
    points: int = 200,
) -> MepStudy:
    """The Fig. 7(b) study across all three converters."""
    if system is None:
        system = paper_system()
    optimizer = HolisticMepOptimizer(system, grid_points=points)
    processor = system.processor
    voltages = np.linspace(
        processor.min_operating_v, min(processor.max_operating_v, 1.0), points
    )
    conventional = np.array(
        [float(processor.energy_per_cycle(float(v))) for v in voltages]
    )
    curves = {}
    comparisons = {}
    for name in system.converter_names:
        _, energies = optimizer.energy_curve(name, voltages)
        curves[name] = energies
        comparisons[name] = optimizer.compare(name)
    return MepStudy(
        voltage_v=voltages,
        conventional_energy_j=conventional,
        curves=curves,
        comparisons=comparisons,
    )
