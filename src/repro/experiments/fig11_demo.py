"""Fig. 11 -- the system demonstration on the test chip.

(a) Measured chip characteristics: clock frequency versus supply,
    per-cycle energy split into leakage and dynamic, and the MEP with
    the (buck) regulator folded in versus the conventional MEP.
(b) The measured sprinting waveform: as the light dims the node sags;
    the processor runs slow above the acceleration threshold, sprints
    below it, and the regulator is bypassed when it can no longer hold
    its output -- extending continuous operation (the paper measures
    ~3 ms / ~20%) and absorbing more solar energy (paper: ~10% at a
    20% sprint rate, per its first-order analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mep import HolisticMepOptimizer, MepComparison
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.experiments.fig9_sprint import fig9b_sprint_gains
from repro.sim.result import SimulationResult


@dataclass(frozen=True)
class ChipCharacteristics:
    """Fig. 11(a): f(V) and energy contributors, with both MEPs."""

    voltage_v: np.ndarray
    frequency_hz: np.ndarray
    dynamic_energy_j: np.ndarray
    leakage_energy_j: np.ndarray
    total_energy_j: np.ndarray
    source_energy_j: np.ndarray  # through the chip's buck regulator
    mep_comparison: MepComparison


def fig11a_chip_characteristics(
    system: "EnergyHarvestingSoC | None" = None,
    regulator_name: str = "buck",
    points: int = 160,
) -> ChipCharacteristics:
    """Sweep the chip models across the 0.2-1.0 V measurement range."""
    if system is None:
        system = paper_system()
    processor = system.processor
    optimizer = HolisticMepOptimizer(system)
    voltages = np.linspace(
        max(processor.min_operating_v, 0.2),
        min(processor.max_operating_v, 1.0),
        points,
    )
    frequency = np.array([float(processor.max_frequency(float(v))) for v in voltages])
    dynamic = np.array(
        [float(processor.dynamic.energy_per_cycle(float(v))) for v in voltages]
    )
    leakage = np.array(
        [
            float(processor.leakage.energy_per_cycle(float(v), f))
            for v, f in zip(voltages, frequency)
        ]
    )
    source = np.array(
        [
            optimizer.source_energy_per_cycle(regulator_name, float(v))
            for v in voltages
        ]
    )
    return ChipCharacteristics(
        voltage_v=voltages,
        frequency_hz=frequency,
        dynamic_energy_j=dynamic,
        leakage_energy_j=leakage,
        total_energy_j=dynamic + leakage,
        source_energy_j=source,
        mep_comparison=optimizer.compare(regulator_name),
    )


@dataclass(frozen=True)
class SprintWaveformDemo:
    """Fig. 11(b): the measured-style waveform comparison."""

    with_sprint: SimulationResult
    without_sprint: SimulationResult
    without_bypass: SimulationResult
    #: Continuous operation gained by the bypass switch [s]: the
    #: bypassed run keeps clocking past the instant the bypass-disabled
    #: run first stalls (its converter dropped out with work pending).
    bypass_extension_s: float
    bypass_extension_fraction: float
    #: Whether each variant met the job.
    completed_with_bypass: bool
    completed_without_bypass_before_stall: bool
    #: Sprint intake gain per the paper's first-order analysis, and as
    #: simulated closed-loop.
    analytic_sprint_energy_gain: float
    simulated_sprint_energy_gain: float


def fig11b_sprint_waveform(
    system: "EnergyHarvestingSoC | None" = None,
    regulator_name: str = "buck",
    sprint_factor: float = 0.2,
    deadline_s: float = 10e-3,
    dim_to: float = 0.35,
) -> SprintWaveformDemo:
    """Run the demo scenario and extract the paper's two measurements."""
    study = fig9b_sprint_gains(
        system=system,
        regulator_name=regulator_name,
        sprint_factor=sprint_factor,
        deadline_s=deadline_s,
        dim_to=dim_to,
    )

    def first_stall_time(result: SimulationResult) -> "float | None":
        for kind, time_s in result.events:
            if kind == "brownout":
                return time_s
        return None

    def continuous_operation_end(result: SimulationResult) -> float:
        stall = first_stall_time(result)
        if stall is not None:
            return stall
        if result.completion_time_s is not None:
            return result.completion_time_s
        running = result.frequency_hz > 0.0
        if not np.any(running):
            return 0.0
        return float(result.time_s[np.nonzero(running)[0][-1]])

    with_end = continuous_operation_end(study.sprint_result)
    without_end = continuous_operation_end(study.no_bypass_result)
    extension = max(0.0, with_end - without_end)
    fraction = extension / without_end if without_end > 0.0 else 0.0
    stall = first_stall_time(study.no_bypass_result)
    completed_before_stall = study.no_bypass_result.completed and (
        stall is None
        or (
            study.no_bypass_result.completion_time_s is not None
            and study.no_bypass_result.completion_time_s <= stall
        )
    )
    return SprintWaveformDemo(
        with_sprint=study.sprint_result,
        without_sprint=study.constant_result,
        without_bypass=study.no_bypass_result,
        bypass_extension_s=extension,
        bypass_extension_fraction=fraction,
        completed_with_bypass=study.sprint_result.completed,
        completed_without_bypass_before_stall=completed_before_stall,
        analytic_sprint_energy_gain=study.analytic_solar_gain,
        simulated_sprint_energy_gain=study.simulated_solar_gain,
    )
