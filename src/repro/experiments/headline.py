"""The paper's headline claims, aggregated (abstract / conclusions).

* "up to 30% savings can be achieved with a holistic view of the
  system compared with conventional rule of thumb" -- the holistic-MEP
  saving over operating at the conventional MEP;
* "20% additional energy savings" / "up to 20% boost of the available
  energy" -- the scheduling schemes (sprint + bypass) against
  constant-speed regulated operation;
* the Section IV gains: more extracted power and speedup with the SC
  regulator at strong light, bypass preferred at low light.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mep import HolisticMepOptimizer
from repro.core.operating_point import OperatingPointOptimizer
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.experiments.fig7_light_and_mep import fig7a_light_sweep
from repro.experiments.fig11_demo import fig11b_sprint_waveform


@dataclass(frozen=True)
class HeadlineClaims:
    """Measured values for every abstract-level claim."""

    #: Fig. 6(b): delivered-power and speed gain of the best SC point
    #: over direct connection at full sun.
    sc_power_gain: float
    sc_speed_gain: float
    #: Extracted-from-cell gain (the MPP story).
    sc_extraction_gain: float
    #: Fig. 7(a): matched-voltage regulated/raw gain at quarter sun
    #: (negative = bypass wins).
    quarter_sun_window_gain: float
    #: Fig. 7(b): holistic-MEP saving over conventional MEP (SC).
    mep_saving: float
    mep_voltage_shift_v: float
    #: Section VI/VII: sprint solar-energy gain and bypass extension.
    sprint_energy_gain: float
    bypass_extension_fraction: float


def headline_claims(
    system: "EnergyHarvestingSoC | None" = None,
) -> HeadlineClaims:
    """Compute every headline metric from the public API."""
    if system is None:
        system = paper_system()
    optimizer = OperatingPointOptimizer(system)
    raw = optimizer.unregulated_point(1.0)
    sc = optimizer.regulated_point("sc", 1.0)
    mep = HolisticMepOptimizer(system).compare("sc")
    quarter = [
        e for e in fig7a_light_sweep(system) if abs(e.irradiance - 0.25) < 1e-9
    ][0]
    demo = fig11b_sprint_waveform(system)
    return HeadlineClaims(
        sc_power_gain=sc.delivered_power_w / raw.delivered_power_w - 1.0,
        sc_speed_gain=sc.frequency_hz / raw.frequency_hz - 1.0,
        sc_extraction_gain=sc.extracted_power_w / raw.extracted_power_w - 1.0,
        quarter_sun_window_gain=quarter.window_gain,
        mep_saving=mep.energy_saving_fraction,
        mep_voltage_shift_v=mep.voltage_shift_v,
        sprint_energy_gain=demo.analytic_sprint_energy_gain,
        bypass_extension_fraction=demo.bypass_extension_fraction,
    )
