"""Fig. 2 -- solar cell I-V curves under variable light.

The paper measures the KXOB22 cell with a variable load while moving it
between outdoor and indoor areas; the curves scale in current with the
quantity of light.  This driver sweeps the calibrated cell model over
the standard condition set and reports the curve family plus the
scalar anchors (Isc, Voc, MPP per condition).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pv.cell import SingleDiodeCell, kxob22_cell
from repro.pv.environment import STANDARD_CONDITIONS, LightCondition
from repro.pv.mpp import find_mpp


@dataclass(frozen=True)
class IvCurve:
    """One condition's curve and anchors."""

    condition: LightCondition
    voltage_v: np.ndarray
    current_a: np.ndarray
    isc_a: float
    voc_v: float
    mpp_voltage_v: float
    mpp_power_w: float


def fig2_iv_curves(
    cell: "SingleDiodeCell | None" = None,
    conditions: "tuple[LightCondition, ...]" = STANDARD_CONDITIONS,
    points: int = 80,
) -> "list[IvCurve]":
    """Compute the Fig. 2 curve family, strongest condition first."""
    if cell is None:
        cell = kxob22_cell()
    curves = []
    for condition in conditions:
        voc = cell.open_circuit_voltage(condition.irradiance)
        voltages = np.linspace(0.0, max(voc, 1e-3), points)
        currents = (
            cell.current(voltages, condition.irradiance)
            if voc > 0.0
            else np.zeros(points)
        )
        mpp = find_mpp(cell, condition.irradiance)
        curves.append(
            IvCurve(
                condition=condition,
                voltage_v=voltages,
                current_a=np.asarray(currents),
                isc_a=cell.short_circuit_current(condition.irradiance),
                voc_v=voc,
                mpp_voltage_v=mpp.voltage_v,
                mpp_power_w=mpp.power_w,
            )
        )
    return curves
