"""Fig. 3 -- LDO efficiency versus output voltage.

The paper's 65 nm LDO shows the textbook resistive-division line:
efficiency proportional to output voltage, ~45% at 0.55 V, essentially
load-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OperatingRangeError
from repro.regulators.ldo import LinearRegulator, paper_ldo

#: The paper's full-load anchor: ~10 mW delivered.
FULL_LOAD_W = 10e-3


@dataclass(frozen=True)
class LdoEfficiencyCurve:
    """The Fig. 3 sweep plus the quoted anchor."""

    voltage_v: np.ndarray
    efficiency: np.ndarray
    anchor_voltage_v: float
    anchor_efficiency: float


def fig3_ldo_efficiency(
    regulator: "LinearRegulator | None" = None,
    load_w: float = FULL_LOAD_W,
    points: int = 60,
) -> LdoEfficiencyCurve:
    """Sweep the LDO efficiency across its output range."""
    if regulator is None:
        regulator = paper_ldo()
    voltages = np.linspace(
        regulator.min_output_v,
        min(regulator.max_output_v, regulator.nominal_input_v - regulator.dropout_v),
        points,
    )
    efficiencies = np.empty(points)
    for i, v in enumerate(voltages):
        try:
            efficiencies[i] = regulator.efficiency(float(v), load_w)
        except OperatingRangeError:
            efficiencies[i] = np.nan
    return LdoEfficiencyCurve(
        voltage_v=voltages,
        efficiency=efficiencies,
        anchor_voltage_v=0.55,
        anchor_efficiency=regulator.efficiency(0.55, load_w),
    )
