"""Fig. 4 -- switched-capacitor regulator efficiency, full and half load.

The paper's reconfigurable SC converter (5:4 / 3:2 / 2:1) reaches 67%
at 0.55 V full load (~10 mW) and 64% at half load; the ratio bank
produces the characteristic scalloped efficiency bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OperatingRangeError
from repro.regulators.switched_capacitor import (
    SwitchedCapacitorRegulator,
    paper_switched_capacitor,
)

#: The paper's load anchors at 0.55 V.
FULL_LOAD_W = 10e-3
HALF_LOAD_W = 5e-3


@dataclass(frozen=True)
class ScEfficiencyCurves:
    """Full- and half-load sweeps plus the 0.55 V anchors."""

    voltage_v: np.ndarray
    efficiency_full: np.ndarray
    efficiency_half: np.ndarray
    anchor_full: float
    anchor_half: float


def fig4_sc_efficiency(
    regulator: "SwitchedCapacitorRegulator | None" = None,
    points: int = 90,
) -> ScEfficiencyCurves:
    """Sweep SC efficiency across output voltage at both load anchors."""
    if regulator is None:
        regulator = paper_switched_capacitor()
    high = min(
        regulator.max_output_v,
        max(
            regulator.no_load_voltage(ratio) for ratio in regulator.ratios
        )
        - 0.01,
    )
    voltages = np.linspace(regulator.min_output_v, high, points)

    def sweep(load_w: float) -> np.ndarray:
        out = np.empty(points)
        for i, v in enumerate(voltages):
            try:
                out[i] = regulator.efficiency(float(v), load_w)
            except OperatingRangeError:
                out[i] = np.nan
        return out

    return ScEfficiencyCurves(
        voltage_v=voltages,
        efficiency_full=sweep(FULL_LOAD_W),
        efficiency_half=sweep(HALF_LOAD_W),
        anchor_full=regulator.efficiency(0.55, FULL_LOAD_W),
        anchor_half=regulator.efficiency(0.55, HALF_LOAD_W),
    )
