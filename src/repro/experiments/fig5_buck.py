"""Fig. 5 -- buck regulator efficiency, full and half load.

The paper's on-chip buck: 63% at 0.55 V full load, 58% at half load,
40-75% across its 0.3-0.8 V output range -- better than the SC at high
output power, equal or worse at light load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OperatingRangeError
from repro.regulators.buck import BuckRegulator, paper_buck

#: The paper's load anchors at 0.55 V.
FULL_LOAD_W = 10e-3
HALF_LOAD_W = 5e-3


@dataclass(frozen=True)
class BuckEfficiencyCurves:
    """Full- and half-load sweeps plus the 0.55 V anchors."""

    voltage_v: np.ndarray
    efficiency_full: np.ndarray
    efficiency_half: np.ndarray
    anchor_full: float
    anchor_half: float


def fig5_buck_efficiency(
    regulator: "BuckRegulator | None" = None,
    points: int = 60,
) -> BuckEfficiencyCurves:
    """Sweep buck efficiency across output voltage at both load anchors."""
    if regulator is None:
        regulator = paper_buck()
    voltages = np.linspace(regulator.min_output_v, regulator.max_output_v, points)

    def sweep(load_w: float) -> np.ndarray:
        out = np.empty(points)
        for i, v in enumerate(voltages):
            try:
                out[i] = regulator.efficiency(float(v), load_w)
            except OperatingRangeError:
                out[i] = np.nan
        return out

    return BuckEfficiencyCurves(
        voltage_v=voltages,
        efficiency_full=sweep(FULL_LOAD_W),
        efficiency_half=sweep(HALF_LOAD_W),
        anchor_full=regulator.efficiency(0.55, FULL_LOAD_W),
        anchor_half=regulator.efficiency(0.55, HALF_LOAD_W),
    )
