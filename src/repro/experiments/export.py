"""Serialize experiment results to JSON.

The benches print text; downstream users who want to *plot* the figures
need the raw series.  :func:`export_figure` runs one figure driver and
returns a plain JSON-serialisable dict (numpy arrays become lists,
dataclasses become dicts); :func:`export_all` writes every figure to a
directory, one ``figN.json`` each.  The CLI's ``figures`` command wraps
this.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.errors import ModelParameterError

#: Figure id -> (driver import path, callable name).  Heavy transient
#: figures (8, 9b, 11b) are included; expect seconds per figure.
FIGURE_DRIVERS = {
    "fig2": ("repro.experiments.fig2_iv_curves", "fig2_iv_curves"),
    "fig3": ("repro.experiments.fig3_ldo", "fig3_ldo_efficiency"),
    "fig4": ("repro.experiments.fig4_sc", "fig4_sc_efficiency"),
    "fig5": ("repro.experiments.fig5_buck", "fig5_buck_efficiency"),
    "fig6a": ("repro.experiments.fig6_operating_points", "fig6a_power_curves"),
    "fig6b": (
        "repro.experiments.fig6_operating_points",
        "fig6b_regulated_comparison",
    ),
    "fig7a": ("repro.experiments.fig7_light_and_mep", "fig7a_light_sweep"),
    "fig7b": ("repro.experiments.fig7_light_and_mep", "fig7b_mep_comparison"),
    "fig8": ("repro.experiments.fig8_mppt", "fig8_mppt_tracking"),
    "fig9a": ("repro.experiments.fig9_sprint", "fig9a_completion_time"),
    "fig9b": ("repro.experiments.fig9_sprint", "fig9b_sprint_gains"),
    "fig11a": ("repro.experiments.fig11_demo", "fig11a_chip_characteristics"),
    "fig11b": ("repro.experiments.fig11_demo", "fig11b_sprint_waveform"),
    "planner": ("repro.experiments.planner_compare", "planner_comparison"),
}

#: Figures light enough for interactive use (no transient simulation).
FAST_FIGURES = ("fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig7a",
                "fig7b", "fig9a")


def to_jsonable(value: object, max_array: int = 100_000) -> object:
    """Recursively convert experiment results to JSON-serialisable data.

    Handles dataclasses, numpy arrays/scalars, dicts, sequences, and
    non-finite floats (encoded as strings, since JSON has no inf/nan).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name), max_array)
            for field in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        if value.size > max_array:
            raise ModelParameterError(
                f"array of {value.size} elements exceeds export cap"
            )
        return [to_jsonable(v, max_array) for v in value.tolist()]
    if isinstance(value, (np.floating, np.integer)):
        return to_jsonable(value.item(), max_array)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, dict):
        return {str(k): to_jsonable(v, max_array) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v, max_array) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if hasattr(value, "__dict__") and not callable(value):
        return {
            k: to_jsonable(v, max_array)
            for k, v in vars(value).items()
            if not k.startswith("_")
        }
    return str(value)


def export_figure(
    figure_id: str, system: "EnergyHarvestingSoC | None" = None
) -> dict:
    """Run one figure driver and return its JSON-ready payload."""
    if figure_id not in FIGURE_DRIVERS:
        raise ModelParameterError(
            f"unknown figure {figure_id!r}; available: "
            f"{sorted(FIGURE_DRIVERS)}"
        )
    module_path, function_name = FIGURE_DRIVERS[figure_id]
    module = __import__(module_path, fromlist=[function_name])
    driver = getattr(module, function_name)
    if system is None:
        system = paper_system()
    # Drivers take either the system or (for fig2/3/4/5) a component.
    if figure_id == "fig2":
        result = driver(system.cell)
    elif figure_id in ("fig3", "fig4", "fig5"):
        result = driver()
    else:
        result = driver(system)
    return {"figure": figure_id, "data": to_jsonable(result)}


def export_all(
    directory: "str | Path",
    figures: "Sequence[str]" = FAST_FIGURES,
    system: "EnergyHarvestingSoC | None" = None,
) -> "list[Path]":
    """Write each requested figure to ``<directory>/<fig>.json``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    if system is None:
        system = paper_system()
    written = []
    for figure_id in figures:
        payload = export_figure(figure_id, system)
        path = target / f"{figure_id}.json"
        path.write_text(json.dumps(payload, indent=2))  # repro-lint: disable=REP007 -- keys follow dataclass field order (source-pinned); sort_keys would churn committed fig*.json goldens
        written.append(path)
    return written
