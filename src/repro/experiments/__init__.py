"""Per-figure reproduction drivers.

One module per paper figure (the paper has no numbered tables; the
evaluation artefacts are Figs. 2-9 and 11).  Each driver computes the
figure's data from the public API and returns plain dataclasses /
dicts; the ``benchmarks/`` suite times them and prints the same
rows/series the paper plots, and ``EXPERIMENTS.md`` records measured vs
paper values.
"""

from repro.experiments import report
from repro.experiments.fig2_iv_curves import fig2_iv_curves
from repro.experiments.fig3_ldo import fig3_ldo_efficiency
from repro.experiments.fig4_sc import fig4_sc_efficiency
from repro.experiments.fig5_buck import fig5_buck_efficiency
from repro.experiments.fig6_operating_points import (
    fig6a_power_curves,
    fig6b_regulated_comparison,
)
from repro.experiments.fig7_light_and_mep import (
    fig7a_light_sweep,
    fig7b_mep_comparison,
)
from repro.experiments.fig8_mppt import fig8_mppt_tracking
from repro.experiments.sweep import ThroughputPoint, throughput_sweep
from repro.experiments.fig9_sprint import (
    fig9a_completion_time,
    fig9b_sprint_gains,
)
from repro.experiments.fig11_demo import (
    fig11a_chip_characteristics,
    fig11b_sprint_waveform,
)
from repro.experiments.headline import headline_claims

__all__ = [
    "report",
    "fig2_iv_curves",
    "fig3_ldo_efficiency",
    "fig4_sc_efficiency",
    "fig5_buck_efficiency",
    "fig6a_power_curves",
    "fig6b_regulated_comparison",
    "fig7a_light_sweep",
    "fig7b_mep_comparison",
    "fig8_mppt_tracking",
    "fig9a_completion_time",
    "fig9b_sprint_gains",
    "fig11a_chip_characteristics",
    "fig11b_sprint_waveform",
    "headline_claims",
    "ThroughputPoint",
    "throughput_sweep",
]
