"""Fig. 9 -- deadline operation: the energy/time frontier and sprinting.

(a) Required-versus-available source energy as a function of completion
    time (eqs. 10-11): the feasible completion time is where the curves
    cross.
(b) The "sprinting" schedule (slow early / fast late, regulator
    bypassed at the end of discharge) against constant-speed execution
    under dimmed light.  Two evaluations are reported:

    * the paper's own first-order energy analysis (eqs. 12-13),
      evaluated with the bench-scale node capacitor: extra solar intake
      around 10% at a 20% sprint factor, and the bypass unlocking
      ~25% more of the capacitor energy;
    * a full closed-loop transient simulation of the same scenario.
      Reproduction note: in the closed loop the speed modulation's
      CV^2 convexity penalty (the sprint phase runs at a higher, less
      efficient voltage) offsets part of the harvesting gain, and the
      outcome is sensitive to how the constant-speed baseline behaves
      at converter dropout -- the *bypass* contribution survives
      robustly, the pure-sprint intake gain is smaller than the
      first-order analysis suggests.  EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.fixed_speed import FixedSpeedBaseline
from repro.core.sprint import SprintController, SprintScheduler
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.processor.workloads import Workload, image_frame_workload
from repro.pv.traces import step_trace
from repro.sim.engine import SimulationConfig, TransientSimulator
from repro.sim.result import SimulationResult
from repro.telemetry.session import Telemetry

#: Node capacitance for the eq. (12) first-order analysis: the paper's
#: bench-scale "small capacitor", small enough that the node voltage
#: trajectory swings across the whole below-MPP region within one job.
ANALYTIC_CAPACITANCE_F = 47e-6


@dataclass(frozen=True)
class CompletionTimeStudy:
    """Fig. 9(a): energy curves over completion time."""

    completion_time_s: np.ndarray
    required_energy_j: np.ndarray
    available_energy_j: np.ndarray
    fastest_feasible_s: float
    irradiance: float


def fig9a_completion_time(
    system: "EnergyHarvestingSoC | None" = None,
    regulator_name: str = "buck",
    workload: "Workload | None" = None,
    irradiance: float = 0.3,
    v_start: float = 1.2,
    v_end: float = 0.6,
    points: int = 60,
) -> CompletionTimeStudy:
    """Sweep the eq. (10)/(11) curves and locate their crossing."""
    if system is None:
        system = paper_system()
    if workload is None:
        workload = image_frame_workload(None)
    scheduler = SprintScheduler(system, regulator_name)
    fastest = scheduler.fastest_completion_time(
        workload, irradiance, v_start, v_end
    )
    mpp_v = system.mpp(irradiance).voltage_v
    times = np.linspace(0.6 * fastest, 3.0 * fastest, points)
    required = np.empty(points)
    available = np.empty(points)
    for i, t in enumerate(times):
        try:
            required[i] = scheduler.required_source_energy(
                workload, float(t), v_in=mpp_v
            )
        except Exception:
            required[i] = np.nan
        available[i] = scheduler.available_energy(
            float(t), irradiance, v_start, v_end
        )
    return CompletionTimeStudy(
        completion_time_s=times,
        required_energy_j=required,
        available_energy_j=available,
        fastest_feasible_s=fastest,
        irradiance=irradiance,
    )


@dataclass(frozen=True)
class SprintStudy:
    """Fig. 9(b): sprint + bypass versus constant speed."""

    sprint_result: SimulationResult
    constant_result: SimulationResult
    no_bypass_result: SimulationResult
    #: eq. (12) first-order analysis at the bench capacitance.
    analytic_solar_constant_j: float
    analytic_solar_sprint_j: float
    #: closed-loop simulated intake over a common window.
    simulated_solar_gain: float
    cap_energy_regulated_j: float
    cap_energy_bypass_j: float
    sprint_factor: float

    @property
    def analytic_solar_gain(self) -> float:
        """The eq. (12) sprint intake gain."""
        if self.analytic_solar_constant_j <= 0.0:
            return 0.0
        return self.analytic_solar_sprint_j / self.analytic_solar_constant_j - 1.0

    @property
    def bypass_extension_fraction(self) -> float:
        """Extra capacitor energy unlocked by bypassing (eq. 13 regime)."""
        if self.cap_energy_regulated_j <= 0.0:
            return 0.0
        return self.cap_energy_bypass_j / self.cap_energy_regulated_j - 1.0


def fig9b_sprint_gains(
    system: "EnergyHarvestingSoC | None" = None,
    regulator_name: str = "buck",
    sprint_factor: float = 0.2,
    deadline_s: float = 10e-3,
    dim_to: float = 0.35,
    dim_time_s: float = 1e-3,
    time_step_s: float = 2e-6,
    telemetry: "Telemetry | None" = None,
) -> SprintStudy:
    """Evaluate the dimmed-light deadline scenario.

    Simulates three closed-loop schedules (sprint+bypass, sprint
    without bypass, constant speed) and additionally evaluates the
    paper's first-order eq. (12) analysis at the bench capacitance.
    ``telemetry`` instruments the sprint+bypass run only (controller
    phases, deadline misses, engine spans) -- the run behind
    ``repro trace sprint``; instrumenting all three runs would
    interleave their identical-name metrics into one registry.
    """
    if system is None:
        system = paper_system()
    workload = image_frame_workload(deadline_s)
    scheduler = SprintScheduler(
        system, regulator_name, sprint_factor=sprint_factor
    )
    v_start = system.mpp(1.0).voltage_v
    plan = scheduler.plan(workload, v_start)
    baseline = FixedSpeedBaseline(system, regulator_name)
    trace = step_trace(1.0, dim_to, dim_time_s, max(4 * deadline_s, 40e-3))

    def run(
        controller: DvfsController,
        run_telemetry: "Telemetry | None" = None,
    ) -> SimulationResult:
        simulator = TransientSimulator(
            cell=system.cell,
            node_capacitor=system.new_node_capacitor(v_start),
            processor=system.processor,
            regulator=system.regulator(regulator_name),
            controller=controller,
            workload=workload,
            config=SimulationConfig(
                time_step_s=time_step_s, record_every=4, stop_on_brownout=False
            ),
            telemetry=run_telemetry,
        )
        return simulator.run(trace)

    sprint_result = run(
        SprintController(
            plan,
            allow_bypass=True,
            telemetry=telemetry,
            deadline_s=workload.deadline_s,
        ),
        run_telemetry=telemetry,
    )
    no_bypass_result = run(SprintController(plan, allow_bypass=False))
    constant_result = run(baseline.controller(workload))

    # Closed-loop intake comparison over a common window.
    ends = [
        r.completion_time_s
        for r in (sprint_result, constant_result)
        if r.completion_time_s is not None
    ]
    window = max(ends) if ends else trace.duration_s

    def solar_within(result: SimulationResult) -> float:
        mask = result.time_s <= window
        return float(
            np.trapezoid(result.harvest_power_w[mask], result.time_s[mask])
        )

    solar_constant = solar_within(constant_result)
    simulated_gain = (
        solar_within(sprint_result) / solar_constant - 1.0
        if solar_constant > 0.0
        else 0.0
    )

    # The paper's first-order analysis at the bench capacitance.
    analytic_system = paper_system(node_capacitance_f=ANALYTIC_CAPACITANCE_F)
    analytic = SprintScheduler(
        analytic_system, regulator_name, sprint_factor=sprint_factor
    )
    const_j, sprint_j = analytic.analytic_extra_solar_energy(
        workload, dim_to, v_start
    )

    cap_reg, cap_byp = scheduler.bypass_energy_extension(plan.output_voltage_v)
    return SprintStudy(
        sprint_result=sprint_result,
        constant_result=constant_result,
        no_bypass_result=no_bypass_result,
        analytic_solar_constant_j=const_j,
        analytic_solar_sprint_j=sprint_j,
        simulated_solar_gain=simulated_gain,
        cap_energy_regulated_j=cap_reg,
        cap_energy_bypass_j=cap_byp,
        sprint_factor=sprint_factor,
    )
