"""Planner comparison figure: DP schedule vs the paper's heuristic.

A fig. 9-style deadline study on the dim-step scenario: the same
workload/deadline run closed-loop under three policies --

* ``planner``: the receding-horizon DP (re-solved each slot from the
  measured node energy against a biased, noisy forecast);
* ``oracle``: the one-shot DP plan solved on the true income series;
* ``heuristic``: the paper's sprint schedule (Section VI-B).

The exported series carry each policy's node-voltage and cumulative-
cycle trajectories plus the solved oracle schedule itself, so the
figure can show *why* the outcomes differ: the heuristic regulates
continuously (implicitly holding the node near MPP, harvesting more)
while the planner spends the stored energy at the efficient low-
voltage operating points and meets the deadline the heuristic misses.
Reproduction note: the bin model credits MPP income regardless of
action, so model-world cycle counts upper-bound what the plant
retires; ``BENCH_planner.json`` quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.sprint import SprintController, SprintScheduler
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.planner.adapter import make_planner_controller
from repro.planner.dp import PlannerSpec, build_actions, solve_plan
from repro.planner.forecast import ForecastErrorModel, bin_trace
from repro.processor.workloads import Workload
from repro.pv.traces import step_trace
from repro.sim.dvfs import DvfsController
from repro.sim.engine import SimulationConfig, TransientSimulator

#: Forecast distortion for the receding policy (matches the bench).
FORECAST_ERROR = ForecastErrorModel(bias=-0.15, noise_sigma=0.2, seed=3)


@dataclass(frozen=True)
class PolicyRun:
    """One policy's closed-loop trajectory and summary."""

    policy: str
    time_s: np.ndarray
    node_voltage_v: np.ndarray
    frequency_hz: np.ndarray
    final_cycles: float
    harvested_energy_j: float
    completion_time_s: "float | None"
    deadline_missed: bool
    brownouts: int


@dataclass(frozen=True)
class PlannerComparison:
    """The full figure payload: three policies plus the oracle plan."""

    duration_s: float
    deadline_s: float
    workload_cycles: int
    slot_s: float
    runs: Tuple[PolicyRun, ...]
    plan_slot_start_s: np.ndarray
    plan_action_names: Tuple[str, ...]
    plan_energy_before_j: np.ndarray
    oracle_expected_cycles: float


def _controller(
    system: EnergyHarvestingSoC,
    trace: "object",
    policy: str,
    spec: PlannerSpec,
    workload: Workload,
    duration_s: float,
) -> DvfsController:
    if policy == "heuristic":
        plan = SprintScheduler(system, "sc").plan(workload, 1.2)
        return SprintController(plan, deadline_s=workload.deadline_s)
    return make_planner_controller(
        system,
        "sc",
        trace,  # type: ignore[arg-type]
        mode="receding" if policy == "planner" else "oracle",
        spec=spec,
        error=FORECAST_ERROR if policy == "planner" else None,
        duration_s=duration_s,
        workload=workload,
        initial_voltage_v=1.2,
    )


def planner_comparison(
    system: "EnergyHarvestingSoC | None" = None,
    bright: float = 0.35,
    dim_to: float = 0.12,
    dim_time_s: float = 24e-3,
    duration_s: float = 80e-3,
    workload_cycles: int = 12_000_000,
    time_step_s: float = 20e-6,
) -> PlannerComparison:
    """Run the three policies on the dim-step deadline scenario."""
    if system is None:
        system = paper_system()
    trace = step_trace(bright, dim_to, dim_time_s, duration_s)
    spec = PlannerSpec()
    workload = Workload(
        name="planner-compare",
        cycles=workload_cycles,
        deadline_s=duration_s,
    )
    runs = []
    for policy in ("planner", "oracle", "heuristic"):
        simulator = TransientSimulator(
            cell=system.cell,
            node_capacitor=system.new_node_capacitor(1.2),
            processor=system.processor,
            regulator=system.regulator("sc"),
            controller=_controller(
                system, trace, policy, spec, workload, duration_s
            ),
            comparators=system.new_comparator_bank(),
            workload=workload,
            config=SimulationConfig(
                time_step_s=time_step_s,
                record_every=4,
                stop_on_completion=False,
                stop_on_brownout=False,
                recover_from_brownout=True,
                recovery_voltage_v=1.05,
            ),
        )
        result = simulator.run(trace, duration_s=duration_s)
        done = result.completion_time_s
        runs.append(
            PolicyRun(
                policy=policy,
                time_s=np.array(result.time_s, dtype=float),
                node_voltage_v=np.array(result.node_voltage_v, dtype=float),
                frequency_hz=np.array(result.frequency_hz, dtype=float),
                final_cycles=float(result.final_cycles),
                harvested_energy_j=float(result.harvested_energy_j()),
                completion_time_s=done,
                deadline_missed=done is None or done > duration_s,
                brownouts=int(result.brownout_count),
            )
        )

    actions, grid = build_actions(system, "sc", spec)
    forecast = bin_trace(trace, system, spec.slot_s, duration_s=duration_s)
    oracle_plan = solve_plan(
        forecast.income_j,
        actions,
        grid,
        0.5 * system.node_capacitance_f * 1.2**2,
        forecast.slot_s,
    )
    return PlannerComparison(
        duration_s=duration_s,
        deadline_s=duration_s,
        workload_cycles=workload_cycles,
        slot_s=spec.slot_s,
        runs=tuple(runs),
        plan_slot_start_s=np.array(
            [step.start_s for step in oracle_plan.steps], dtype=float
        ),
        plan_action_names=tuple(
            step.action.name for step in oracle_plan.steps
        ),
        plan_energy_before_j=np.array(
            [step.energy_before_j for step in oracle_plan.steps], dtype=float
        ),
        oracle_expected_cycles=oracle_plan.expected_cycles,
    )
