"""Fig. 6 -- operating points at full sun.

(a) the cell's P-V curve against the processor's max-speed power curve:
    direct connection operates at their intersection, well below the
    cell's MPP ("significantly reduced incoming power source");
(b) the regulated output-power curves per converter: the SC extracts
    ~31% more power than the unregulated point and yields ~18% more
    speed; the buck is slightly behind; the LDO delivers *less* than
    the raw cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.operating_point import OperatingPoint, OperatingPointOptimizer
from repro.core.system import EnergyHarvestingSoC, paper_system


@dataclass(frozen=True)
class PowerCurves:
    """Fig. 6(a): the two power-voltage curves and their intersection."""

    voltage_v: np.ndarray
    pv_power_w: np.ndarray
    processor_power_w: np.ndarray
    unregulated: OperatingPoint
    mpp_voltage_v: float
    mpp_power_w: float


@dataclass(frozen=True)
class RegulatedComparison:
    """Fig. 6(b): per-converter best point versus the unregulated one."""

    regulator_name: str
    point: OperatingPoint
    power_gain: float  # delivered power vs unregulated delivered
    speed_gain: float  # clock vs unregulated clock
    extraction_gain: float  # extracted-from-cell power vs unregulated
    output_curve_v: np.ndarray
    output_curve_w: np.ndarray


def fig6a_power_curves(
    system: "EnergyHarvestingSoC | None" = None,
    irradiance: float = 1.0,
    points: int = 120,
) -> PowerCurves:
    """The Fig. 6(a) curve pair at the given irradiance."""
    if system is None:
        system = paper_system()
    optimizer = OperatingPointOptimizer(system)
    unregulated = optimizer.unregulated_point(irradiance)
    mpp = system.mpp(irradiance)
    voc = system.cell.open_circuit_voltage(irradiance)
    voltages = np.linspace(system.processor.min_operating_v, voc, points)
    pv_power = np.asarray(system.cell.power(voltages, irradiance))
    proc_power = np.array(
        [
            float(system.processor.max_power(min(v, system.processor.max_operating_v)))
            for v in voltages
        ]
    )
    return PowerCurves(
        voltage_v=voltages,
        pv_power_w=pv_power,
        processor_power_w=proc_power,
        unregulated=unregulated,
        mpp_voltage_v=mpp.voltage_v,
        mpp_power_w=mpp.power_w,
    )


def fig6b_regulated_comparison(
    system: "EnergyHarvestingSoC | None" = None,
    irradiance: float = 1.0,
) -> "list[RegulatedComparison]":
    """Per-converter comparison against direct connection (Fig. 6(b))."""
    if system is None:
        system = paper_system()
    optimizer = OperatingPointOptimizer(system)
    unregulated = optimizer.unregulated_point(irradiance)
    results = []
    for name in system.converter_names:
        point = optimizer.regulated_point(name, irradiance)
        curve_v, curve_w = optimizer.output_power_curve(name, irradiance)
        results.append(
            RegulatedComparison(
                regulator_name=name,
                point=point,
                power_gain=point.delivered_power_w / unregulated.delivered_power_w
                - 1.0,
                speed_gain=point.frequency_hz / unregulated.frequency_hz - 1.0,
                extraction_gain=point.extracted_power_w
                / unregulated.extracted_power_w
                - 1.0,
                output_curve_v=curve_v,
                output_curve_w=curve_w,
            )
        )
    return results
