"""Fig. 8 -- MPP tracking from capacitor discharge timing.

Reproduces the paper's simulated waveform: the system runs at the
full-light operating point; the light is dimmed abruptly; the solar
node discharges through the comparator thresholds; the controller
estimates the new input power from the crossing interval (eq. 7),
looks up the new MPP and retunes DVFS.  The driver reports the
waveform, the estimate's accuracy against ground truth, and how close
the post-retune node voltage settles to the true new MPP voltage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mppt import DischargeTimeMppTracker, MppTrackingController
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.pv.traces import step_trace
from repro.sim.engine import SimulationConfig, TransientSimulator
from repro.sim.result import SimulationResult
from repro.telemetry.session import Telemetry


@dataclass(frozen=True)
class MpptTrackingResult:
    """Outcome of the Fig. 8 scenario."""

    simulation: SimulationResult
    dim_time_s: float
    before_irradiance: float
    after_irradiance: float
    true_power_w: float
    estimated_power_w: float
    estimate_error: float
    retune_time_s: "float | None"
    settled_node_voltage_v: float
    true_mpp_voltage_v: float

    @property
    def reaction_latency_s(self) -> "float | None":
        """Dim-to-retune delay, or None if the controller never retuned."""
        if self.retune_time_s is None:
            return None
        return self.retune_time_s - self.dim_time_s


def fig8_mppt_tracking(
    system: "EnergyHarvestingSoC | None" = None,
    regulator_name: str = "sc",
    before: float = 1.0,
    after: float = 0.3,
    dim_time_s: float = 5e-3,
    duration_s: float = 60e-3,
    time_step_s: float = 5e-6,
    telemetry: "Telemetry | None" = None,
) -> MpptTrackingResult:
    """Run the dimming scenario and evaluate the tracking quality.

    ``telemetry`` instruments both the controller (retrack events,
    retrack counters) and the engine (mode switches, spans) -- this is
    the scenario behind ``repro trace fig8``.
    """
    if system is None:
        system = paper_system()
    tracker = DischargeTimeMppTracker(system, regulator_name)
    controller = MppTrackingController(
        tracker, initial_irradiance=before, telemetry=telemetry
    )
    capacitor = system.new_node_capacitor(system.mpp(before).voltage_v)
    simulator = TransientSimulator(
        cell=system.cell,
        node_capacitor=capacitor,
        processor=system.processor,
        regulator=system.regulator(regulator_name),
        controller=controller,
        comparators=system.new_comparator_bank(),
        config=SimulationConfig(
            time_step_s=time_step_s, record_every=4, stop_on_brownout=False
        ),
        telemetry=telemetry,
    )
    trace = step_trace(before, after, dim_time_s, duration_s)
    result = simulator.run(trace)

    true_mpp = system.mpp(after)
    if controller.retunes:
        record = controller.retunes[0]
        estimated = record.estimate.input_power_w
        retune_time = record.time_s
    else:
        estimated = float("nan")
        retune_time = None
    # Node voltage over the last 10% of the run (settled region).
    tail = result.node_voltage_v[int(0.9 * len(result.node_voltage_v)):]
    settled = float(np.mean(tail)) if len(tail) else float("nan")
    error = (
        abs(estimated - true_mpp.power_w) / true_mpp.power_w
        if np.isfinite(estimated) and true_mpp.power_w > 0.0
        else float("nan")
    )
    return MpptTrackingResult(
        simulation=result,
        dim_time_s=dim_time_s,
        before_irradiance=before,
        after_irradiance=after,
        true_power_w=true_mpp.power_w,
        estimated_power_w=estimated,
        estimate_error=error,
        retune_time_s=retune_time,
        settled_node_voltage_v=settled,
        true_mpp_voltage_v=true_mpp.voltage_v,
    )
