"""Plain-text table/series formatting shared by the benches.

The paper reports its results as figures; the benches print the same
data as aligned text tables so a terminal run of the benchmark suite
reads like the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ModelParameterError


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], precision: int = 3
) -> str:
    """Render rows as an aligned monospace table.

    Floats are fixed to ``precision`` digits; everything else is
    ``str()``-ed.  Column widths adapt to content.
    """
    if not headers:
        raise ModelParameterError("a table needs at least one header")

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ModelParameterError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  every: int = 1, precision: int = 4) -> str:
    """Render an (x, y) series compactly, decimated by ``every``."""
    if every < 1:
        raise ModelParameterError(f"every must be >= 1, got {every}")
    pairs = [
        f"({x:.{precision}g}, {y:.{precision}g})"
        for x, y in list(zip(xs, ys))[::every]
    ]
    return f"{name}: " + " ".join(pairs)


def paper_vs_measured(
    claims: "Iterable[tuple[str, str, str]]",
) -> str:
    """Render (claim, paper value, measured value) triples."""
    return format_table(["claim", "paper", "measured"], claims)
