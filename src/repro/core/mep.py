"""Holistic minimum energy point (Section V, eq. 5).

When performance is not the constraint (an energy-reservation regime:
finish the work with the least charge drawn from the store), the
conventional rule of thumb is to run the processor at its minimum
energy point.  The paper's eq. (5) rewrites the MEP with the regulator
in the loop:

    min over V of  E_in(V) = (E_dyn(V) + E_leak(V)) / eta_reg(V, P(V))

Because eta itself falls at low output voltage (conversion-ratio
granularity) and at low load (fixed converter overhead), the holistic
minimum sits *above* the conventional MEP -- the Fig. 7(b) result: the
minimum-energy voltage shifts up and operating at the conventional MEP
through a regulator wastes up to ~30% energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import EnergyHarvestingSoC
from repro.errors import (
    InfeasibleOperatingPointError,
    ModelParameterError,
    OperatingRangeError,
)
from repro.processor.energy import MinimumEnergyPoint


@dataclass(frozen=True)
class MepComparison:
    """Conventional versus holistic MEP for one converter."""

    regulator_name: str
    conventional: MinimumEnergyPoint
    holistic: MinimumEnergyPoint
    #: Source-side energy per cycle when operating AT the conventional
    #: MEP voltage through the converter (what a conventionally-designed
    #: system actually draws).
    conventional_through_regulator_j: float

    @property
    def voltage_shift_v(self) -> float:
        """How far the minimum moved up (positive = paper's direction)."""
        return self.holistic.voltage_v - self.conventional.voltage_v

    @property
    def energy_saving_fraction(self) -> float:
        """Saving from operating at the holistic rather than the
        conventional MEP, measured at the source: the paper's
        "up to 31% energy reduction"."""
        if self.conventional_through_regulator_j <= 0.0:
            return 0.0
        return (
            1.0
            - self.holistic.energy_per_cycle_j
            / self.conventional_through_regulator_j
        )


class HolisticMepOptimizer:
    """Computes source-referred energy per cycle and its minimum.

    Parameters
    ----------
    system:
        The composed SoC.
    input_voltage_v:
        Converter input voltage for the analysis.  Defaults to each
        converter's characterisation input; pass the live MPP voltage
        for in-situ analysis.
    grid_points:
        Voltage sweep resolution.
    """

    def __init__(
        self,
        system: EnergyHarvestingSoC,
        input_voltage_v: "float | None" = None,
        grid_points: int = 320,
    ) -> None:
        if grid_points < 16:
            raise ModelParameterError(
                f"grid_points must be >= 16, got {grid_points}"
            )
        self.system = system
        self.input_voltage_v = input_voltage_v
        self.grid_points = grid_points

    # -- the eq. (5) objective ------------------------------------------------------

    def source_energy_per_cycle(
        self, regulator_name: str, voltage_v: float
    ) -> float:
        """Eq. (5): processor energy per cycle divided by eta(V, P(V)).

        The processor is assumed clocked at its maximum frequency for
        the voltage (the MEP regime of the paper's analysis: finish and
        sleep).  Returns ``inf`` where the converter cannot regulate.
        """
        processor = self.system.processor
        regulator = self.system.regulator(regulator_name)
        processor.check_voltage(voltage_v)
        frequency = float(processor.max_frequency(voltage_v))
        energy = float(processor.energy_per_cycle(voltage_v, frequency))
        power = float(processor.power(voltage_v, frequency))
        try:
            efficiency = regulator.efficiency(
                voltage_v, power, v_in=self.input_voltage_v
            )
        except OperatingRangeError:
            return float("inf")
        if efficiency <= 0.0:
            return float("inf")
        return energy / efficiency

    def energy_curve(
        self, regulator_name: str, voltages: "np.ndarray | None" = None
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Source energy per cycle across voltage (the Fig. 7(b) curves)."""
        processor = self.system.processor
        regulator = self.system.regulator(regulator_name)
        if voltages is None:
            low = max(processor.min_operating_v, regulator.min_output_v)
            high = min(processor.max_operating_v, regulator.max_output_v)
            if regulator_name != "bypass" and self.input_voltage_v is not None:
                high = min(high, self.input_voltage_v)
            voltages = np.linspace(low, high, self.grid_points)
        energies = np.array(
            [
                self.source_energy_per_cycle(regulator_name, float(v))
                for v in voltages
            ]
        )
        return np.asarray(voltages, dtype=float), energies

    # -- minima and the comparison ----------------------------------------------------

    def holistic_mep(self, regulator_name: str) -> MinimumEnergyPoint:
        """Minimise eq. (5) for one converter."""
        voltages, energies = self.energy_curve(regulator_name)
        finite = np.isfinite(energies)
        if not np.any(finite):
            raise InfeasibleOperatingPointError(
                f"{regulator_name}: converter cannot regulate anywhere in "
                "the processor's voltage window"
            )
        index = int(np.argmin(np.where(finite, energies, np.inf)))
        v = float(voltages[index])
        return MinimumEnergyPoint(
            voltage_v=v,
            energy_per_cycle_j=float(energies[index]),
            frequency_hz=float(self.system.processor.max_frequency(v)),
        )

    def compare(self, regulator_name: str) -> MepComparison:
        """Conventional vs holistic MEP (the Fig. 7(b) comparison)."""
        conventional = self.system.processor.conventional_mep()
        holistic = self.holistic_mep(regulator_name)
        through = self.source_energy_per_cycle(
            regulator_name, conventional.voltage_v
        )
        return MepComparison(
            regulator_name=regulator_name,
            conventional=conventional,
            holistic=holistic,
            conventional_through_regulator_j=through,
        )
