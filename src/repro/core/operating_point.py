"""Holistic optimal voltage point (Section IV, eqs. 1-4).

The problem statement: maximize the processor clock

    max f_clk                                            (1)

subject to the power the whole chain draws staying within the cell's
maximum power point,

    P_in(V, f) <= P_mpp(irradiance)                      (2)
    f <= f_max(V)                                        (3)
    P_in = (P_dyn(V, f) + P_leak(V)) / eta_reg(V, P)     (4)

Conventional designs optimise each module locally: run the cell at MPP
(MPPT circuits) *or* pick the processor's best voltage -- but not the
composition.  The optimizer here sweeps the processor voltage and, for
each candidate, asks the regulator how much of the MPP power actually
arrives (folding in eta(V, P)), then takes the fastest feasible point.
It also evaluates the *unregulated* (bypass) alternative -- the direct
connection whose operating point is the I-V intersection of Fig. 6(a)
-- and reports whichever wins, which is how the low-light bypass
decision of Fig. 7(a) falls out naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import EnergyHarvestingSoC
from repro.errors import (
    InfeasibleOperatingPointError,
    ModelParameterError,
    OperatingRangeError,
)


@dataclass(frozen=True)
class OperatingPoint:
    """A resolved system operating point.

    ``extracted_power_w`` is what leaves the solar cell;
    ``delivered_power_w`` is what reaches the processor supply pins.
    The gap is converter loss (zero when bypassed).
    """

    processor_voltage_v: float
    frequency_hz: float
    delivered_power_w: float
    extracted_power_w: float
    node_voltage_v: float
    regulator_name: str
    bypassed: bool

    @property
    def conversion_efficiency(self) -> float:
        """``delivered / extracted`` (1.0 for bypass by construction)."""
        if self.extracted_power_w <= 0.0:
            return 0.0
        return self.delivered_power_w / self.extracted_power_w


class OperatingPointOptimizer:
    """Finds performance-optimal operating points for one system.

    Parameters
    ----------
    system:
        The composed SoC.
    grid_points:
        Resolution of the processor-voltage sweep.  Band-edge effects
        of the SC regulator need a reasonably fine grid; 240 covers the
        0.15-1.1 V range at ~4 mV.
    """

    def __init__(self, system: EnergyHarvestingSoC, grid_points: int = 240) -> None:
        if grid_points < 16:
            raise ModelParameterError(
                f"grid_points must be >= 16, got {grid_points}"
            )
        self.system = system
        self.grid_points = grid_points

    def _voltage_grid(self, low: float, high: float) -> np.ndarray:
        return np.linspace(low, high, self.grid_points)

    # -- unregulated (bypass) point ------------------------------------------------

    def unregulated_point(self, irradiance: float) -> OperatingPoint:
        """Best direct-connection point: the Fig. 6(a) intersection.

        The node settles where the cell's I-V curve meets the
        processor's current draw; with DVFS the processor can also
        throttle below the intersection voltage, so the optimum is
        ``max over V of min(f_max(V), f sustainable from P_pv(V))``.
        """
        processor = self.system.processor
        cell = self.system.cell
        voc = cell.open_circuit_voltage(irradiance)
        if voc <= processor.min_operating_v:
            raise InfeasibleOperatingPointError(
                f"open-circuit voltage {voc:.3f} V below processor minimum "
                f"{processor.min_operating_v:.3f} V at irradiance {irradiance}"
            )
        high = min(voc, processor.max_operating_v)
        grid = self._voltage_grid(processor.min_operating_v, high)
        best: "OperatingPoint | None" = None
        for v in grid:
            p_pv = float(cell.power(v, irradiance))
            if p_pv <= 0.0:
                continue
            f = processor.frequency_for_power(float(v), p_pv)
            if f <= 0.0:
                continue
            p_proc = float(processor.power(float(v), f))
            if best is None or f > best.frequency_hz:
                best = OperatingPoint(
                    processor_voltage_v=float(v),
                    frequency_hz=f,
                    delivered_power_w=p_proc,
                    extracted_power_w=p_proc,
                    node_voltage_v=float(v),
                    regulator_name="bypass",
                    bypassed=True,
                )
        if best is None:
            raise InfeasibleOperatingPointError(
                f"cell cannot sustain the processor at irradiance {irradiance}"
            )
        return best

    # -- regulated point ----------------------------------------------------------

    def regulated_point(
        self, regulator_name: str, irradiance: float
    ) -> OperatingPoint:
        """Best regulated point for one converter (eqs. 1-4 solved).

        Assumes the MPP-tracking loop holds the node at the cell's MPP
        voltage, so the converter sees ``v_in = V_mpp`` and may draw up
        to ``P_mpp``.
        """
        regulator = self.system.regulator(regulator_name)
        processor = self.system.processor
        mpp = self.system.mpp(irradiance)
        if mpp.power_w <= 0.0:
            raise InfeasibleOperatingPointError(
                f"no harvestable power at irradiance {irradiance}"
            )
        low = max(processor.min_operating_v, regulator.min_output_v)
        high = min(processor.max_operating_v, regulator.max_output_v, mpp.voltage_v)
        if low >= high:
            raise InfeasibleOperatingPointError(
                f"{regulator_name}: no overlap between converter and "
                "processor voltage ranges"
            )
        best: "OperatingPoint | None" = None
        for v in self._voltage_grid(low, high):
            try:
                available = regulator.max_output_power(
                    float(v), mpp.power_w, v_in=mpp.voltage_v
                )
            except OperatingRangeError:
                continue
            if available <= 0.0:
                continue
            f = processor.frequency_for_power(float(v), available)
            if f <= 0.0:
                continue
            p_proc = float(processor.power(float(v), f))
            try:
                extracted = regulator.input_power(
                    float(v), p_proc, v_in=mpp.voltage_v
                )
            except OperatingRangeError:
                continue
            if best is None or f > best.frequency_hz:
                best = OperatingPoint(
                    processor_voltage_v=float(v),
                    frequency_hz=f,
                    delivered_power_w=p_proc,
                    extracted_power_w=extracted,
                    node_voltage_v=mpp.voltage_v,
                    regulator_name=regulator_name,
                    bypassed=False,
                )
        if best is None:
            raise InfeasibleOperatingPointError(
                f"{regulator_name}: no feasible operating point at "
                f"irradiance {irradiance}"
            )
        return best

    # -- the holistic choice --------------------------------------------------------

    def best_point(
        self, regulator_name: str, irradiance: float
    ) -> OperatingPoint:
        """The holistic decision: regulated point or bypass, whichever
        clocks faster.

        This is the scheme of Section IV-B: at strong light the
        regulated point wins (MPP extraction beats converter loss); as
        light fades the converter overhead dominates and the bypass
        point takes over.
        """
        candidates = []
        try:
            candidates.append(self.regulated_point(regulator_name, irradiance))
        except InfeasibleOperatingPointError:
            pass
        try:
            candidates.append(self.unregulated_point(irradiance))
        except InfeasibleOperatingPointError:
            pass
        if not candidates:
            raise InfeasibleOperatingPointError(
                f"no operating point at all at irradiance {irradiance}"
            )
        return max(candidates, key=lambda p: p.frequency_hz)

    def output_power_curve(
        self,
        regulator_name: str,
        irradiance: float,
        voltages: "np.ndarray | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Regulated output power vs output voltage (Fig. 6(b)/7(a) curves).

        Returns ``(voltages, output_power)`` where output power is what
        the converter can deliver at each voltage from the cell's MPP
        power (NaN where the converter cannot regulate that voltage).
        """
        regulator = self.system.regulator(regulator_name)
        mpp = self.system.mpp(irradiance)
        if voltages is None:
            voltages = self._voltage_grid(
                regulator.min_output_v,
                min(regulator.max_output_v, mpp.voltage_v),
            )
        powers = np.full(len(voltages), np.nan)
        for i, v in enumerate(voltages):
            try:
                powers[i] = regulator.max_output_power(
                    float(v), mpp.power_w, v_in=mpp.voltage_v
                )
            except OperatingRangeError:
                continue
        return np.asarray(voltages, dtype=float), powers
