"""Composition of the full battery-less SoC (the paper's Fig. 1/10).

:class:`EnergyHarvestingSoC` bundles the substrates -- solar cell, node
capacitor, regulator bank, processor, comparator thresholds -- into the
single object the optimizers, schedulers and experiments operate on.
:func:`paper_system` builds the configuration of the paper's test
setup: the KXOB22 cell, the three on-chip regulators of Figs. 3-5 plus
the bypass switch, the 65 nm image processor, and board comparators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ModelParameterError
from repro.monitor.comparator import ComparatorBank
from repro.monitor.lut import MppLookupTable, build_mpp_lut
from repro.processor.energy import ProcessorModel, paper_processor
from repro.pv.cell import SingleDiodeCell, kxob22_cell
from repro.pv.mpp import MaximumPowerPoint, find_mpp
from repro.regulators.base import Regulator
from repro.regulators.buck import paper_buck
from repro.regulators.bypass import BypassPath
from repro.regulators.ldo import paper_ldo
from repro.regulators.switched_capacitor import paper_switched_capacitor
from repro.storage.capacitor import Capacitor

#: Comparator thresholds on the solar node (the V0 > V1 > V2 of Fig. 8).
DEFAULT_THRESHOLDS_V = (1.15, 1.05, 0.95)

#: Node storage capacitance of the reference bench.  Sized so a
#: millisecond-scale deadline job discharges the node over the same
#: 1.2 V -> ~0.55 V trajectory as the paper's measured waveform
#: (Fig. 11(b)): a few mW of deficit for ~20 ms swings ~half the
#: stored energy.
DEFAULT_NODE_CAPACITANCE_F = 150e-6


@dataclass
class EnergyHarvestingSoC:
    """The full system under study.

    Parameters
    ----------
    cell / processor:
        Harvester and load models.
    regulators:
        Converter bank by name; must include the key ``"bypass"``.
    node_capacitance_f:
        Solar-node storage capacitance.
    comparator_thresholds_v:
        Monitor thresholds, highest first.
    """

    cell: SingleDiodeCell
    processor: ProcessorModel
    regulators: Dict[str, Regulator]
    node_capacitance_f: float = DEFAULT_NODE_CAPACITANCE_F
    comparator_thresholds_v: Tuple[float, ...] = DEFAULT_THRESHOLDS_V
    _mpp_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.node_capacitance_f <= 0.0:
            raise ModelParameterError(
                f"node capacitance must be positive, got {self.node_capacitance_f}"
            )
        if "bypass" not in self.regulators:
            raise ModelParameterError(
                'regulator bank must include a "bypass" entry'
            )
        if len(self.comparator_thresholds_v) < 2:
            raise ModelParameterError(
                "need at least two comparator thresholds for eq. (7) timing"
            )
        ordered = sorted(self.comparator_thresholds_v, reverse=True)
        if tuple(ordered) != tuple(self.comparator_thresholds_v):
            raise ModelParameterError(
                "comparator thresholds must be listed highest first"
            )

    # -- derived components -----------------------------------------------------

    def regulator(self, name: str) -> Regulator:
        """Look up a converter by name with a helpful error."""
        try:
            return self.regulators[name]
        except KeyError:
            raise ModelParameterError(
                f"unknown regulator {name!r}; available: "
                f"{sorted(self.regulators)}"
            ) from None

    @property
    def converter_names(self) -> "tuple[str, ...]":
        """Names of real converters (bypass excluded), sorted."""
        return tuple(sorted(n for n in self.regulators if n != "bypass"))

    def new_node_capacitor(self, initial_voltage_v: float) -> Capacitor:
        """A fresh node capacitor at the given precharge."""
        return Capacitor(
            self.node_capacitance_f, initial_voltage_v=initial_voltage_v
        )

    def new_comparator_bank(self) -> ComparatorBank:
        """A fresh comparator bank at the configured thresholds."""
        return ComparatorBank(list(self.comparator_thresholds_v))

    def mpp(self, irradiance: float) -> MaximumPowerPoint:
        """The cell's MPP at an irradiance (cached -- it is pure)."""
        key = round(irradiance, 9)
        if key not in self._mpp_cache:
            self._mpp_cache[key] = find_mpp(self.cell, irradiance)
        return self._mpp_cache[key]

    def build_mpp_lut(self, points: int = 24) -> MppLookupTable:
        """Pre-characterise the power-to-MPP LUT for this cell."""
        return build_mpp_lut(self.cell, points=points)


def paper_system(
    node_capacitance_f: float = DEFAULT_NODE_CAPACITANCE_F,
) -> EnergyHarvestingSoC:
    """The paper's demonstration system (Sections II, III, VII)."""
    return EnergyHarvestingSoC(
        cell=kxob22_cell(),
        processor=paper_processor(),
        regulators={
            "ldo": paper_ldo(),
            "sc": paper_switched_capacitor(),
            "buck": paper_buck(),
            "bypass": BypassPath(),
        },
        node_capacitance_f=node_capacitance_f,
    )
