"""Duty-cycled periodic operation and sustainable throughput.

The paper's Section VI-B closes with: "Large duty cycle is used to
restore the voltage on the capacitor after the operation."  A deployed
sensing node runs exactly that regime: execute one job (a recognition
frame), halt while the harvester refills the node, repeat.  This module
answers the two questions that regime poses:

* **analysis** -- what job rate can a light level sustain indefinitely?
  Energy balance over one period: the job's source energy must not
  exceed the harvest, so the sustainable rate is

      rate_max = eta_path * P_harvest / E_job_source            (jobs/s)

  where ``E_job_source`` comes from the same eq.-(8)/(10) machinery the
  sprint scheduler uses and ``P_harvest`` is the MPP power (regulated
  path) or the raw curve power (bypass path);

* **execution** -- :class:`DutyCycleController` runs the
  job-halt-recharge loop in the transient simulator: start a job when
  the node has recovered to the start threshold, halt on completion,
  and let the node refill.

The analysis/controller pair powers the sustained-throughput experiment
(the system-level "performance" the paper's IoT framing cares about)
and its ablation bench.
"""

from __future__ import annotations

from typing import ClassVar, Optional, Sequence

from dataclasses import dataclass

from repro.core.operating_point import OperatingPoint, OperatingPointOptimizer
from repro.core.system import EnergyHarvestingSoC
from repro.errors import (
    InfeasibleOperatingPointError,
    ModelParameterError,
    OperatingRangeError,
)
from repro.processor.workloads import Workload
from repro.sim.dvfs import ControlDecision, ControllerView, DvfsController


@dataclass(frozen=True)
class SustainableRate:
    """Steady-state throughput analysis for one job at one light level."""

    jobs_per_second: float
    job_time_s: float
    recharge_time_s: float
    duty_fraction: float
    operating_point: OperatingPoint
    job_source_energy_j: float

    @property
    def period_s(self) -> float:
        """One job-plus-recharge period."""
        return self.job_time_s + self.recharge_time_s


class DutyCycleScheduler:
    """Sustainable-rate analysis for periodic jobs.

    Parameters
    ----------
    system:
        The composed SoC.
    regulator_name:
        Converter used for the regulated path; the holistic operating
        point may still choose bypass where that wins.
    """

    def __init__(self, system: EnergyHarvestingSoC, regulator_name: str = "sc") -> None:
        self.system = system
        self.regulator_name = regulator_name
        self.optimizer = OperatingPointOptimizer(system)
        self._mep_point_cache: "dict[float, OperatingPoint]" = {}

    def _mep_point(self, irradiance: float) -> OperatingPoint:
        """The holistic-MEP operating point for this light (cached)."""
        key = round(irradiance, 9)
        if key not in self._mep_point_cache:
            from repro.core.mep import HolisticMepOptimizer

            mpp = self.system.mpp(irradiance)
            optimizer = HolisticMepOptimizer(
                self.system, input_voltage_v=mpp.voltage_v
            )
            mep = optimizer.holistic_mep(self.regulator_name)
            processor = self.system.processor
            regulator = self.system.regulator(self.regulator_name)
            delivered = float(processor.power(mep.voltage_v, mep.frequency_hz))
            extracted = regulator.input_power(
                mep.voltage_v, delivered, v_in=mpp.voltage_v
            )
            self._mep_point_cache[key] = OperatingPoint(
                processor_voltage_v=mep.voltage_v,
                frequency_hz=mep.frequency_hz,
                delivered_power_w=delivered,
                extracted_power_w=extracted,
                node_voltage_v=mpp.voltage_v,
                regulator_name=self.regulator_name,
                bypassed=False,
            )
        return self._mep_point_cache[key]

    def _rate_at_point(
        self, workload: Workload, irradiance: float, point: OperatingPoint
    ) -> SustainableRate:
        """Energy-balanced periodic rate for one operating point."""
        job_time = workload.cycles / point.frequency_hz
        job_energy = self.job_source_energy(workload, point)
        harvest_power = self.system.mpp(irradiance).power_w
        if harvest_power <= 0.0:
            raise InfeasibleOperatingPointError(
                f"no harvestable power at irradiance {irradiance}"
            )
        min_period = max(job_energy / harvest_power, job_time)
        return SustainableRate(
            jobs_per_second=1.0 / min_period,
            job_time_s=job_time,
            recharge_time_s=min_period - job_time,
            duty_fraction=job_time / min_period,
            operating_point=point,
            job_source_energy_j=job_energy,
        )

    def job_source_energy(
        self, workload: Workload, point: OperatingPoint
    ) -> float:
        """Source-side energy one job costs at an operating point."""
        if point.frequency_hz <= 0.0:
            raise InfeasibleOperatingPointError(
                "operating point has no running clock"
            )
        job_time = workload.cycles / point.frequency_hz
        return point.extracted_power_w * job_time

    def sustainable_rate(
        self, workload: Workload, irradiance: float
    ) -> SustainableRate:
        """Maximum indefinitely-sustainable job rate at an irradiance.

        Two strategies compete and the better one wins:

        * run *continuously* at the holistic performance point
          (Section IV): sustainable by construction, duty 1.0;
        * run *duty-cycled* at the holistic minimum-energy point
          (Section V): each job costs the least source energy, the
          halt phase harvests at full MPP power, and the sustainable
          rate is ``P_mpp / E_job`` -- at low light this beats the
          continuous strategy, unifying the paper's two optimality
          notions into one throughput answer.
        """
        candidates = []
        best = self.optimizer.best_point(self.regulator_name, irradiance)
        if best.frequency_hz > 0.0:
            candidates.append(self._rate_at_point(workload, irradiance, best))
        try:
            mep_point = self._mep_point(irradiance)
            candidates.append(
                self._rate_at_point(workload, irradiance, mep_point)
            )
        except (InfeasibleOperatingPointError, OperatingRangeError):
            pass
        if not candidates:
            raise InfeasibleOperatingPointError(
                f"no sustainable operation at irradiance {irradiance}"
            )
        return max(candidates, key=lambda r: r.jobs_per_second)

    def sustainable_rate_with_latency(
        self, workload: Workload, irradiance: float, max_job_time_s: float
    ) -> SustainableRate:
        """Sustainable rate when each job must finish in ``max_job_time_s``.

        The latency constraint forces a faster (hungrier) operating
        point than the harvest alone sustains; the capacitor funds each
        job and the halt phase restores it -- the paper's "large duty
        cycle is used to restore the voltage" regime.  The resulting
        duty fraction is below one whenever the constraint binds.
        """
        if max_job_time_s <= 0.0:
            raise ModelParameterError(
                f"max job time must be positive, got {max_job_time_s}"
            )
        free = self.sustainable_rate(workload, irradiance)
        if free.job_time_s <= max_job_time_s:
            # The unconstrained optimum already meets the latency.
            return free

        processor = self.system.processor
        regulator = self.system.regulator(self.regulator_name)
        mpp = self.system.mpp(irradiance)
        f_required = workload.cycles / max_job_time_s
        # Meet the latency at the least source energy: never drop below
        # the holistic MEP voltage (same logic as the sprint planner).
        v = max(
            processor.voltage_for_frequency(f_required),
            self._mep_point(irradiance).processor_voltage_v,
            regulator.min_output_v,
        )
        f_run = max(f_required, float(processor.max_frequency(v)))
        delivered = float(processor.power(v, f_run))
        extracted = regulator.input_power(v, delivered, v_in=mpp.voltage_v)
        point = OperatingPoint(
            processor_voltage_v=v,
            frequency_hz=f_run,
            delivered_power_w=delivered,
            extracted_power_w=extracted,
            node_voltage_v=mpp.voltage_v,
            regulator_name=self.regulator_name,
            bypassed=False,
        )
        return self._rate_at_point(workload, irradiance, point)

    def rate_curve(
        self, workload: Workload, irradiances: "Sequence[float]"
    ) -> "list[tuple[float, float]]":
        """(irradiance, jobs/s) pairs; zero where operation is infeasible."""
        curve = []
        for irradiance in irradiances:
            try:
                rate = self.sustainable_rate(workload, float(irradiance))
                curve.append((float(irradiance), rate.jobs_per_second))
            except InfeasibleOperatingPointError:
                curve.append((float(irradiance), 0.0))
        return curve


class DutyCycleController(DvfsController):
    """Execute the job-halt-recharge loop in the transient simulator.

    Runs jobs of ``cycles_per_job`` at a fixed operating point.  A job
    starts when the node has recovered to ``start_above_v``; the clock
    gates when the job's cycles are done; if the node sags to
    ``abort_below_v`` mid-job the job pauses (clock gated) until the
    node recovers -- the defensive variant of the paper's duty cycling.
    """

    VECTOR_FAMILY: ClassVar[Optional[str]] = "duty_cycle"

    def __init__(
        self,
        point: OperatingPoint,
        cycles_per_job: int,
        start_above_v: float,
        abort_below_v: float,
    ) -> None:
        if cycles_per_job <= 0:
            raise ModelParameterError(
                f"cycles per job must be positive, got {cycles_per_job}"
            )
        if abort_below_v >= start_above_v:
            raise ModelParameterError(
                f"abort threshold {abort_below_v} must lie below start "
                f"threshold {start_above_v}"
            )
        self.point = point
        self.cycles_per_job = cycles_per_job
        self.start_above_v = start_above_v
        self.abort_below_v = abort_below_v
        self.jobs_completed = 0
        self.job_start_times_s: "list[float]" = []
        self._running = False
        self._paused = False
        self._job_start_cycles = 0.0

    #: Recovery hysteresis above the abort threshold before resuming.
    RESUME_HYSTERESIS_V = 0.02

    def reset(self) -> None:
        self.jobs_completed = 0
        self.job_start_times_s.clear()
        self._running = False
        self._paused = False
        self._job_start_cycles = 0.0

    def _decision(self, frequency_hz: float) -> ControlDecision:
        if self.point.bypassed:
            return ControlDecision(mode="bypass", frequency_hz=frequency_hz)
        return ControlDecision(
            mode="regulated",
            frequency_hz=frequency_hz,
            output_voltage_v=self.point.processor_voltage_v,
        )

    def decide(self, view: ControllerView) -> ControlDecision:
        if self._running:
            done = view.cycles_done - self._job_start_cycles
            if done >= self.cycles_per_job:
                self._running = False
                self._paused = False
                self.jobs_completed += 1
                return ControlDecision(mode="halt", frequency_hz=0.0)
            if self._paused:
                if (
                    view.node_voltage_v
                    >= self.abort_below_v + self.RESUME_HYSTERESIS_V
                ):
                    self._paused = False
                else:
                    return ControlDecision(mode="halt", frequency_hz=0.0)
            elif view.node_voltage_v <= self.abort_below_v:
                # Pause: ride out the sag without losing progress.
                self._paused = True
                return ControlDecision(mode="halt", frequency_hz=0.0)
            return self._decision(self.point.frequency_hz)
        if view.node_voltage_v >= self.start_above_v:
            self._running = True
            self._job_start_cycles = view.cycles_done
            self.job_start_times_s.append(view.time_s)
            return self._decision(self.point.frequency_hz)
        return ControlDecision(mode="halt", frequency_hz=0.0)

    def vector_state(self) -> "tuple[bool, bool, float]":
        """``(running, paused, job_start_cycles)`` snapshot.

        The fleet control plane mirrors this after every real
        :meth:`decide` call; between calls the controller's output is
        constant, so the mirror plus the family's trigger thresholds
        fully determine when the next real call is needed.
        """
        return (self._running, self._paused, self._job_start_cycles)

    def measured_rate(self, duration_s: float) -> float:
        """Completed jobs per second over a run of ``duration_s``."""
        if duration_s <= 0.0:
            raise ModelParameterError(
                f"duration must be positive, got {duration_s}"
            )
        return self.jobs_completed / duration_s
