"""The policy engine: one entry point from (policy, conditions, work)
to an executable plan.

:class:`HolisticEnergyManager` is what a deployed node would run.  It
dispatches on :class:`~repro.core.policies.Policy`, uses the
Section IV/V/VI machinery to compute the operating point or sprint
schedule, and materialises a simulator controller so the plan can be
executed (or evaluated) directly.

The conventional baselines are planned here too, so every comparison in
the benches goes through one code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mep import HolisticMepOptimizer
from repro.core.operating_point import OperatingPoint, OperatingPointOptimizer
from repro.core.policies import Policy
from repro.core.sprint import SprintController, SprintPlan, SprintScheduler
from repro.core.system import EnergyHarvestingSoC
from repro.errors import ModelParameterError
from repro.processor.workloads import Workload
from repro.sim.dvfs import (
    BypassController,
    ConstantSpeedController,
    DvfsController,
    FixedOperatingPointController,
)
from repro.telemetry.session import Telemetry

#: The regulator-datasheet operating voltage a conventional design
#: centres on (the 0.55 V anchor of the paper's Figs. 3-5).
CONVENTIONAL_SETPOINT_V = 0.55


@dataclass(frozen=True)
class OperatingPlan:
    """A fully-resolved plan for one policy under one condition."""

    policy: Policy
    regulator_name: str
    operating_point: "OperatingPoint | None" = None
    sprint_plan: "SprintPlan | None" = None

    def __post_init__(self) -> None:
        if self.operating_point is None and self.sprint_plan is None:
            raise ModelParameterError(
                "a plan needs an operating point or a sprint schedule"
            )

    @property
    def is_sprint(self) -> bool:
        """True for deadline sprint plans."""
        return self.sprint_plan is not None


class HolisticEnergyManager:
    """Plans and materialises controllers for every policy.

    Parameters
    ----------
    system:
        The composed SoC.
    regulator_name:
        The converter the regulated policies use ("sc" or "buck" in the
        paper's studies; "ldo" is available for the comparison).
    sprint_factor:
        Sprint beta for the deadline policy.
    """

    def __init__(
        self,
        system: EnergyHarvestingSoC,
        regulator_name: str = "sc",
        sprint_factor: float = 0.2,
    ) -> None:
        self.system = system
        self.regulator_name = regulator_name
        self.optimizer = OperatingPointOptimizer(system)
        self.mep_optimizer = HolisticMepOptimizer(system)
        self.sprint_scheduler = SprintScheduler(
            system, regulator_name=regulator_name, sprint_factor=sprint_factor
        )

    # -- planning ------------------------------------------------------------------

    def plan(
        self,
        policy: Policy,
        irradiance: float,
        workload: "Workload | None" = None,
        v_start: "float | None" = None,
    ) -> OperatingPlan:
        """Resolve a policy into an executable plan.

        ``workload`` is required for the sprint policy (it carries the
        deadline); ``v_start`` is the node precharge assumed by sprint
        planning (defaults to the cell's MPP voltage).
        """
        if policy is Policy.HOLISTIC_SPRINT:
            if workload is None or workload.deadline_s is None:
                raise ModelParameterError(
                    "the sprint policy needs a workload with a deadline"
                )
            if v_start is None:
                v_start = self.system.mpp(irradiance).voltage_v
            sprint_plan = self.sprint_scheduler.plan(workload, v_start)
            return OperatingPlan(
                policy=policy,
                regulator_name=self.regulator_name,
                sprint_plan=sprint_plan,
            )

        point = self._steady_point(policy, irradiance)
        return OperatingPlan(
            policy=policy,
            regulator_name=self.regulator_name,
            operating_point=point,
        )

    def _steady_point(self, policy: Policy, irradiance: float) -> OperatingPoint:
        processor = self.system.processor
        if policy is Policy.RAW_SOLAR:
            return self.optimizer.unregulated_point(irradiance)

        if policy is Policy.HOLISTIC_PERFORMANCE:
            return self.optimizer.best_point(self.regulator_name, irradiance)

        if policy is Policy.CONVENTIONAL_REGULATED:
            # Datasheet sweet spot, power-limited clock.
            regulator = self.system.regulator(self.regulator_name)
            mpp = self.system.mpp(irradiance)
            v = CONVENTIONAL_SETPOINT_V
            available = regulator.max_output_power(v, mpp.power_w, v_in=mpp.voltage_v)
            f = processor.frequency_for_power(v, available)
            p_proc = float(processor.power(v, f)) if f > 0.0 else 0.0
            extracted = (
                regulator.input_power(v, p_proc, v_in=mpp.voltage_v)
                if f > 0.0
                else 0.0
            )
            return OperatingPoint(
                processor_voltage_v=v,
                frequency_hz=f,
                delivered_power_w=p_proc,
                extracted_power_w=extracted,
                node_voltage_v=mpp.voltage_v,
                regulator_name=self.regulator_name,
                bypassed=False,
            )

        if policy in (Policy.CONVENTIONAL_MEP, Policy.HOLISTIC_MEP):
            if policy is Policy.CONVENTIONAL_MEP:
                mep = processor.conventional_mep()
            else:
                mep = self.mep_optimizer.holistic_mep(self.regulator_name)
            regulator = self.system.regulator(self.regulator_name)
            mpp = self.system.mpp(irradiance)
            f = float(processor.max_frequency(mep.voltage_v))
            p_proc = float(processor.power(mep.voltage_v, f))
            extracted = regulator.input_power(
                mep.voltage_v, p_proc, v_in=mpp.voltage_v
            )
            return OperatingPoint(
                processor_voltage_v=mep.voltage_v,
                frequency_hz=f,
                delivered_power_w=p_proc,
                extracted_power_w=extracted,
                node_voltage_v=mpp.voltage_v,
                regulator_name=self.regulator_name,
                bypassed=False,
            )

        raise ModelParameterError(f"unhandled policy {policy!r}")

    # -- materialisation ---------------------------------------------------------------

    def controller(
        self,
        plan: OperatingPlan,
        workload: "Workload | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> DvfsController:
        """A simulator controller executing the plan.

        For steady plans with a workload, the controller halts once the
        work completes (duty-cycled operation); without one it holds
        the point forever.  ``telemetry`` is forwarded to controllers
        that emit it (currently the sprint controller, which also picks
        up the workload's deadline for miss accounting).
        """
        if plan.sprint_plan is not None:
            deadline_s = workload.deadline_s if workload is not None else None
            return SprintController(
                plan.sprint_plan, telemetry=telemetry, deadline_s=deadline_s
            )

        point = plan.operating_point
        assert point is not None  # guaranteed by OperatingPlan validation
        if point.bypassed:
            frequency = point.frequency_hz

            def law(v_node: float, _f: float = frequency) -> float:
                return _f

            return BypassController(law)
        if workload is not None:
            return ConstantSpeedController(
                output_voltage_v=point.processor_voltage_v,
                frequency_hz=point.frequency_hz,
                total_cycles=workload.cycles,
            )
        return FixedOperatingPointController(
            output_voltage_v=point.processor_voltage_v,
            frequency_hz=point.frequency_hz,
        )
