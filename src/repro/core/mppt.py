"""MPP tracking from capacitor discharge timing (Section VI-A).

The scheme, per the paper's Fig. 8: the solar node is watched by a few
sub-microwatt comparators (V0 > V1 > V2).  In steady state the node
sits near the MPP voltage, above all thresholds.  When the light dims,
the node discharges; the time it takes to fall from V1 to V2, together
with the known converter draw, yields the new input power by eq. (7):

    Pin = Pdraw - C (V1^2 - V2^2) / (2 t)

A pre-characterised lookup table maps that power to the new MPP
voltage and irradiance, and DVFS is retuned so the converter draws
exactly the new maximum power -- parking the node at the new MPP.
"No additional circuitry or software" beyond the comparators.

:class:`DischargeTimeMppTracker` is the estimation + lookup + retune
logic; :class:`MppTrackingController` wraps it as a simulator
controller for the Fig. 8 waveform reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.core.operating_point import OperatingPoint, OperatingPointOptimizer
from repro.core.system import EnergyHarvestingSoC
from repro.errors import InfeasibleOperatingPointError, ModelParameterError
from repro.monitor.estimator import DischargeTimePowerEstimator, PowerEstimate
from repro.monitor.lut import MppLookupTable
from repro.sim.dvfs import ControlDecision, ControllerView, DvfsController
from repro.storage.capacitor import Capacitor
from repro.telemetry.session import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class RetuneRecord:
    """One completed track-and-retune action (for analysis/tests).

    ``estimate`` is None for probe retunes (surplus-driven upward
    steps), which are not backed by an eq. (7) measurement.
    """

    time_s: float
    estimate: "PowerEstimate | None"
    estimated_irradiance: float
    new_point: OperatingPoint


class DischargeTimeMppTracker:
    """Estimation, lookup and operating-point retuning.

    Parameters
    ----------
    system:
        The composed SoC.
    regulator_name:
        Converter the operating points are computed for.
    lut:
        Pre-characterised power-to-MPP table (built offline via
        :meth:`EnergyHarvestingSoC.build_mpp_lut`).
    """

    def __init__(
        self,
        system: EnergyHarvestingSoC,
        regulator_name: str,
        lut: "MppLookupTable | None" = None,
    ) -> None:
        self.system = system
        self.regulator_name = regulator_name
        self.lut = lut or system.build_mpp_lut()
        self.optimizer = OperatingPointOptimizer(system)
        self.estimator = DischargeTimePowerEstimator(
            Capacitor(system.node_capacitance_f)
        )
        self._point_memo: "dict[float, OperatingPoint]" = {}

    def operating_point_for(self, irradiance: float) -> OperatingPoint:
        """The holistic operating point for an (estimated) irradiance.

        When the estimated light cannot sustain any operation at all
        (deep darkness: leakage alone exceeds the harvest), returns a
        *survival point* -- clock gated, zero draw -- so the controller
        parks the system instead of browning it out.

        The result is a pure function of the irradiance (the system
        and regulator are fixed at construction) and the returned
        :class:`OperatingPoint` is frozen, so calls memoize: controller
        resets and fleet lanes sharing one tracker pay the optimizer
        scan once per distinct irradiance, not once per lane.
        """
        memoized = self._point_memo.get(irradiance)
        if memoized is not None:
            return memoized
        try:
            point = self.optimizer.best_point(self.regulator_name, irradiance)
        except InfeasibleOperatingPointError:
            floor_v = self.system.processor.min_operating_v
            point = OperatingPoint(
                processor_voltage_v=floor_v,
                frequency_hz=0.0,
                delivered_power_w=0.0,
                extracted_power_w=0.0,
                node_voltage_v=floor_v,
                regulator_name="bypass",
                bypassed=True,
            )
        self._point_memo[irradiance] = point
        return point

    def track(
        self,
        upper_v: float,
        lower_v: float,
        interval_s: float,
        node_draw_power_w: float,
        time_s: float = 0.0,
    ) -> RetuneRecord:
        """One full eq. (7) measurement -> LUT -> retune step."""
        estimate = self.estimator.estimate(
            upper_v, lower_v, interval_s, node_draw_power_w
        )
        entry = self.lut.interpolate(estimate.input_power_w)
        new_point = self.operating_point_for(entry.irradiance)
        return RetuneRecord(
            time_s=time_s,
            estimate=estimate,
            estimated_irradiance=entry.irradiance,
            new_point=new_point,
        )


@dataclass(frozen=True)
class MpptTriggerSnapshot:
    """Everything that decides whether the next ``decide`` call matters.

    Taken by the fleet control plane after every real call.  Between
    calls the controller's output is constant and its state only
    changes when one of these triggers fires, so the plane can skip
    calls whose scalar-engine counterpart would have been a no-op:

    * a comparator event is pending (must always be ingested);
    * ``brownout_count`` moved past ``brownouts_seen``;
    * the settle window has expired *and* either a qualifying crossing
      pair is already banked (``pair_ready``; the pair conditions are
      time-independent between calls), or the node voltage crossed the
      probe-up/probe-down thresholds.

    The probe thresholds fold in the LUT-saturation early-outs:
    ``probe_up_threshold_v`` is ``+inf`` when the irradiance estimate
    is already at the table maximum, ``probe_down_threshold_v`` is
    ``-inf`` at the table minimum.
    """

    last_retune_s: float
    probe_up_threshold_v: float
    probe_down_threshold_v: float
    pair_ready: bool
    brownouts_seen: int


class MppTrackingController(DvfsController):
    """Closed-loop discharge-time MPP tracking for the simulator.

    Starts at the operating point for ``initial_irradiance`` and
    retunes whenever the comparator bank reports the node falling (or
    rising) through two consecutive thresholds: falling pairs trigger
    the eq. (7) estimate; rising pairs use the charging-time analogue
    ``Pin = Pdraw + C (V_hi^2 - V_lo^2) / (2 t)``.  Pairs are only
    trusted when the two crossings happened within
    ``max_interval_s`` of each other -- crossings from different light
    epochs would otherwise combine into a bogus measurement.

    When the node rides *above* the top comparator (harvest surplus
    with no measurable discharge), the controller probes upward: it
    scales its irradiance estimate by ``probe_factor`` each settle
    period until the load again parks the node inside the threshold
    window -- a comparator-driven hill climb for brightening light.
    """

    VECTOR_FAMILY: ClassVar[Optional[str]] = "mppt"

    def __init__(
        self,
        tracker: DischargeTimeMppTracker,
        initial_irradiance: float,
        settle_time_s: float = 2e-3,
        max_interval_s: float = 10e-3,
        probe_factor: float = 1.4,
        probe_margin_v: float = 0.03,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if settle_time_s < 0.0:
            raise ModelParameterError(
                f"settle time must be >= 0, got {settle_time_s}"
            )
        if max_interval_s <= 0.0:
            raise ModelParameterError(
                f"max interval must be positive, got {max_interval_s}"
            )
        if probe_factor <= 1.0:
            raise ModelParameterError(
                f"probe factor must exceed 1, got {probe_factor}"
            )
        self.tracker = tracker
        self.initial_irradiance = initial_irradiance
        self.settle_time_s = settle_time_s
        self.max_interval_s = max_interval_s
        self.probe_factor = probe_factor
        self.probe_margin_v = probe_margin_v
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.retunes: "list[RetuneRecord]" = []
        self._point = tracker.operating_point_for(initial_irradiance)
        self._irradiance_estimate = initial_irradiance
        self._crossings: "dict[tuple[float, str], float]" = {}
        self._last_retune_s = -float("inf")
        self._last_node_v: "float | None" = None
        self._brownouts_seen = 0

    def reset(self) -> None:
        self.retunes.clear()
        self._point = self.tracker.operating_point_for(self.initial_irradiance)
        self._irradiance_estimate = self.initial_irradiance
        self._crossings.clear()
        self._last_retune_s = -float("inf")
        self._last_node_v = None
        self._brownouts_seen = 0

    @property
    def operating_point(self) -> OperatingPoint:
        """The currently commanded operating point."""
        return self._point

    def _node_draw_power(self, v_node: float) -> float:
        """Converter input power at the commanded point (eq. 6's Pout/eta)."""
        point = self._point
        if point.bypassed:
            return point.delivered_power_w
        regulator = self.tracker.system.regulator(self.tracker.regulator_name)
        try:
            return regulator.input_power(
                point.processor_voltage_v,
                point.delivered_power_w,
                v_in=max(v_node, point.processor_voltage_v + 1e-3),
            )
        except Exception:
            return point.extracted_power_w

    def _maybe_retune(self, view: ControllerView) -> None:
        thresholds = self.tracker.system.comparator_thresholds_v
        for event in view.comparator_events:
            self._crossings[(event.threshold_v, event.direction)] = event.time_s
        if view.time_s - self._last_retune_s < self.settle_time_s:
            return
        # Look for a fresh adjacent-threshold pair, preferring the
        # lowest (latest-crossed) pair for falling, highest for rising.
        for upper, lower in zip(thresholds, thresholds[1:]):
            t_upper = self._crossings.get((upper, "falling"))
            t_lower = self._crossings.get((lower, "falling"))
            if (
                t_upper is not None
                and t_lower is not None
                and t_lower > t_upper
                and t_lower > self._last_retune_s
                and t_lower - t_upper <= self.max_interval_s
            ):
                # Evaluate the known draw at the mid-threshold voltage,
                # the average node voltage during the measurement.
                draw = self._node_draw_power(0.5 * (upper + lower))
                record = self.tracker.track(
                    upper, lower, t_lower - t_upper, draw, time_s=view.time_s
                )
                self._apply(record, view.time_s, kind="measured")
                return
        for upper, lower in zip(thresholds, thresholds[1:]):
            t_lower = self._crossings.get((lower, "rising"))
            t_upper = self._crossings.get((upper, "rising"))
            if (
                t_lower is not None
                and t_upper is not None
                and t_upper > t_lower
                and t_upper > self._last_retune_s
                and t_upper - t_lower <= self.max_interval_s
            ):
                draw = self._node_draw_power(0.5 * (upper + lower))
                released = self.tracker.estimator.capacitor.energy_between(
                    upper, lower
                )
                interval = t_upper - t_lower
                estimate = PowerEstimate(
                    input_power_w=draw + released / interval,
                    interval_s=interval,
                    upper_v=upper,
                    lower_v=lower,
                )
                entry = self.tracker.lut.interpolate(estimate.input_power_w)
                record = RetuneRecord(
                    time_s=view.time_s,
                    estimate=estimate,
                    estimated_irradiance=entry.irradiance,
                    new_point=self.tracker.operating_point_for(entry.irradiance),
                )
                self._apply(record, view.time_s, kind="measured")
                return
        self._maybe_probe_upward(view)
        self._maybe_probe_downward(view)

    def _maybe_probe_upward(self, view: ControllerView) -> None:
        """Hill-climb when the node rides above the top comparator."""
        # A surplus shows as the node riding above both the top
        # comparator and the MPP voltage the current estimate predicts
        # (at the true estimate, MPPT parks the node at that voltage).
        top = self.tracker.system.comparator_thresholds_v[0]
        expected = max(top, self._point.node_voltage_v)
        if view.node_voltage_v <= expected + self.probe_margin_v:
            return
        lut_max = max(e.irradiance for e in self.tracker.lut.entries)
        if self._irradiance_estimate >= lut_max:
            return
        probed = min(self._irradiance_estimate * self.probe_factor, lut_max)
        record = RetuneRecord(
            time_s=view.time_s,
            estimate=None,
            estimated_irradiance=probed,
            new_point=self.tracker.operating_point_for(probed),
        )
        self._apply(record, view.time_s, kind="probe_up")

    def _maybe_probe_downward(self, view: ControllerView) -> None:
        """Back off when the node is pinned below the bottom comparator.

        The mirror of the surplus probe: a node parked below every
        threshold means the estimate is definitely too optimistic
        (the retune equation had no usable crossing pair -- e.g. the
        pair straddled two light epochs and was rejected), so the
        estimate is scaled down until the node recovers into the
        comparator window.
        """
        bottom = self.tracker.system.comparator_thresholds_v[-1]
        if view.node_voltage_v >= bottom - self.probe_margin_v:
            return
        # Only back off while the node is still falling: once a probe
        # has opened enough headroom for recovery, let it climb back
        # into the window instead of racing the recovery downward.
        if (
            self._last_node_v is not None
            and view.node_voltage_v > self._last_node_v + 1e-6
        ):
            return
        lut_min = min(e.irradiance for e in self.tracker.lut.entries)
        if self._irradiance_estimate <= lut_min:
            return
        probed = max(self._irradiance_estimate / self.probe_factor, lut_min)
        record = RetuneRecord(
            time_s=view.time_s,
            estimate=None,
            estimated_irradiance=probed,
            new_point=self.tracker.operating_point_for(probed),
        )
        self._apply(record, view.time_s, kind="probe_down")

    def _apply(
        self, record: RetuneRecord, time_s: float, kind: str = "measured"
    ) -> None:
        tel = self.telemetry
        tel.count("mppt.retracks")
        tel.count(f"mppt.retracks.{kind}")
        if self._last_retune_s > -float("inf"):
            tel.observe("mppt.retrack_interval_s", time_s - self._last_retune_s)
        tel.event(
            "mppt.retrack", time_s, track="mppt",
            kind=kind,
            irradiance=record.estimated_irradiance,
            frequency_hz=record.new_point.frequency_hz,
            node_v=record.new_point.node_voltage_v,
        )
        self.retunes.append(record)
        self._point = record.new_point
        self._irradiance_estimate = record.estimated_irradiance
        self._last_retune_s = time_s

    def _retrack_after_brownout(self, view: ControllerView) -> None:
        """Re-track after a recovery instead of trusting the stale point.

        The pre-brownout LUT point is exactly what browned the node out,
        and every in-flight crossing pair straddles the collapse, so
        both are discarded: the estimate restarts conservatively (two
        probe factors down) and the comparator-driven machinery climbs
        back up if the light turns out to be better.
        """
        self._crossings.clear()
        lut_min = min(e.irradiance for e in self.tracker.lut.entries)
        conservative = max(
            self._irradiance_estimate / (self.probe_factor**2), lut_min
        )
        record = RetuneRecord(
            time_s=view.time_s,
            estimate=None,
            estimated_irradiance=conservative,
            new_point=self.tracker.operating_point_for(conservative),
        )
        self._apply(record, view.time_s, kind="recovery")

    def _pair_ready(self) -> bool:
        """Whether a banked crossing pair would retune right now.

        Replicates the two pair-search loops of :meth:`_maybe_retune`
        exactly (same dict lookups, same comparisons) without applying
        the retune.  All inputs are timestamps and ``_last_retune_s``,
        none of which move between real ``decide`` calls, so the answer
        stays valid until the next call.
        """
        thresholds = self.tracker.system.comparator_thresholds_v
        for upper, lower in zip(thresholds, thresholds[1:]):
            t_upper = self._crossings.get((upper, "falling"))
            t_lower = self._crossings.get((lower, "falling"))
            if (
                t_upper is not None
                and t_lower is not None
                and t_lower > t_upper
                and t_lower > self._last_retune_s
                and t_lower - t_upper <= self.max_interval_s
            ):
                return True
        for upper, lower in zip(thresholds, thresholds[1:]):
            t_lower = self._crossings.get((lower, "rising"))
            t_upper = self._crossings.get((upper, "rising"))
            if (
                t_lower is not None
                and t_upper is not None
                and t_upper > t_lower
                and t_upper > self._last_retune_s
                and t_upper - t_lower <= self.max_interval_s
            ):
                return True
        return False

    def sync_last_node_v(self, node_voltage_v: float) -> None:
        """Set ``_last_node_v`` as a per-step scalar call would have.

        The scalar engine calls :meth:`decide` every step, so
        ``_last_node_v`` always holds the previous step's node voltage.
        The fleet control plane skips no-op calls and instead syncs the
        mirror it keeps (the previous step's voltage array) through
        this seam immediately before each real call.
        """
        self._last_node_v = node_voltage_v

    def vector_triggers(self) -> MpptTriggerSnapshot:
        """Snapshot the call-skip triggers (see the snapshot docstring)."""
        entries = self.tracker.lut.entries
        lut_max = max(e.irradiance for e in entries)
        lut_min = min(e.irradiance for e in entries)
        thresholds = self.tracker.system.comparator_thresholds_v
        if self._irradiance_estimate >= lut_max:
            up = float("inf")
        else:
            expected = max(thresholds[0], self._point.node_voltage_v)
            up = expected + self.probe_margin_v
        if self._irradiance_estimate <= lut_min:
            down = -float("inf")
        else:
            down = thresholds[-1] - self.probe_margin_v
        return MpptTriggerSnapshot(
            last_retune_s=self._last_retune_s,
            probe_up_threshold_v=up,
            probe_down_threshold_v=down,
            pair_ready=self._pair_ready(),
            brownouts_seen=self._brownouts_seen,
        )

    def decide(self, view: ControllerView) -> ControlDecision:
        if view.recovering:
            # Power-gated by the supply monitor: hold halt while the
            # node recharges and drop crossing pairs from the collapse.
            self._crossings.clear()
            self._last_node_v = view.node_voltage_v
            return ControlDecision(mode="halt", frequency_hz=0.0)
        if view.brownout_count > self._brownouts_seen:
            self._brownouts_seen = view.brownout_count
            self._retrack_after_brownout(view)
        self._maybe_retune(view)
        self._last_node_v = view.node_voltage_v
        point = self._point
        if point.frequency_hz <= 0.0:
            # Survival point: truly power-gate.  A bypassed f=0 point
            # would leak at the node voltage and pin the node below the
            # probe-up window forever -- the "zero draw" the survival
            # point promises requires halt, not an idle bypass.
            return ControlDecision(mode="halt", frequency_hz=0.0)
        if point.bypassed:
            return ControlDecision(
                mode="bypass", frequency_hz=point.frequency_hz
            )
        return ControlDecision(
            mode="regulated",
            frequency_hz=point.frequency_hz,
            output_voltage_v=point.processor_voltage_v,
        )
