"""Deadline scheduling with "sprinting" and regulator bypass
(Section VI-B, eqs. 8-13).

Under a completion-time constraint the processor may have to consume
more than the harvester supplies; the node capacitor covers the
deficit and the job must finish before the node sags too low.  The
paper's analysis:

* eq. (8):  source energy for ``N`` cycles at supply ``V`` is
  ``N * C_proc * V^2 / eta``;
* eqs. (9)-(10): with ``f`` approximately linear in ``V``, the energy
  required from the source rises steeply as the deadline shrinks;
* eq. (11): the energy available within ``T`` is the solar intake
  ``P_in * T`` plus the capacitor's swing ``C/2 (Vstart^2 - Vend^2)``;
  the fastest feasible completion time is where the two curves cross
  (Fig. 9(a));
* eqs. (12)-(13): the *sprinting* schedule -- run slower while the node
  is still high, sprint once it has sagged -- keeps the solar node
  near its maximum-power voltage longer, harvesting extra energy
  (~10% at a 20% sprint factor), and *bypassing* the regulator at the
  end of the discharge unlocks the capacitor energy below the
  regulator's minimum input (~25% more of the stored energy).

:class:`SprintScheduler` implements the analysis; its companion
:class:`SprintController` executes the schedule inside the transient
simulator for the waveform-level reproductions (Figs. 9(b), 11(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.system import EnergyHarvestingSoC
from repro.errors import (
    InfeasibleOperatingPointError,
    ModelParameterError,
    OperatingRangeError,
)
from repro.processor.workloads import Workload
from repro.regulators.base import Regulator
from repro.sim.dvfs import ControlDecision, ControllerView, DvfsController
from repro.telemetry.session import NULL_TELEMETRY, Telemetry


def min_input_voltage_for_output(
    regulator: Regulator, v_out: float, probe_power_w: float = 1e-3
) -> float:
    """Lowest input voltage from which the converter can regulate ``v_out``.

    Found by bisection on the converter's own range checking (duty
    limit for a buck, ratio availability for an SC bank).  This is the
    node voltage at which the paper's scheme throws the bypass switch.
    """
    def feasible(v_in: float) -> bool:
        try:
            regulator.input_power(v_out, probe_power_w, v_in=v_in)
            return True
        except OperatingRangeError:
            return False

    high = max(regulator.nominal_input_v * 2.0, v_out * 4.0)
    if not feasible(high):
        raise InfeasibleOperatingPointError(
            f"{regulator.name} cannot regulate {v_out:.3f} V from any input"
        )
    low = v_out * 0.5
    if feasible(low):
        return low
    for _ in range(80):
        mid = 0.5 * (low + high)
        if feasible(mid):
            high = mid
        else:
            low = mid
        if high - low < 1e-6:
            break
    return high


@dataclass(frozen=True)
class SprintPlan:
    """An executable sprint schedule.

    Phase changes are keyed to the measured node voltage, matching the
    comparator-driven control of the paper's bench (Fig. 11(b)): slow
    while the node is above ``accelerate_below_v``, sprint below it,
    bypass once the node cannot sustain the regulated output.
    """

    output_voltage_v: float
    slow_frequency_hz: float
    fast_frequency_hz: float
    accelerate_below_v: float
    bypass_below_v: float
    cycles: int
    sprint_factor: float

    def __post_init__(self) -> None:
        if self.slow_frequency_hz <= 0.0 or self.fast_frequency_hz <= 0.0:
            raise ModelParameterError("sprint frequencies must be positive")
        if self.fast_frequency_hz < self.slow_frequency_hz:
            raise ModelParameterError(
                "fast frequency must be >= slow frequency"
            )
        if self.bypass_below_v >= self.accelerate_below_v:
            raise ModelParameterError(
                "bypass threshold must lie below the acceleration threshold"
            )
        if not 0.0 <= self.sprint_factor < 1.0:
            raise ModelParameterError(
                f"sprint factor must be in [0, 1), got {self.sprint_factor}"
            )


class SprintScheduler:
    """Analytic deadline/energy analysis and sprint planning.

    Parameters
    ----------
    system:
        The composed SoC.
    regulator_name:
        Converter used during the regulated phases.
    sprint_factor:
        The paper's beta: fractional slow-down/speed-up around the
        deadline's average speed (0.2 in the measured demo).
    """

    def __init__(
        self,
        system: EnergyHarvestingSoC,
        regulator_name: str = "buck",
        sprint_factor: float = 0.2,
    ) -> None:
        if not 0.0 <= sprint_factor < 1.0:
            raise ModelParameterError(
                f"sprint factor must be in [0, 1), got {sprint_factor}"
            )
        self.system = system
        self.regulator_name = regulator_name
        self.regulator = system.regulator(regulator_name)
        self.sprint_factor = sprint_factor
        self._mep_cache: "dict[float | None, float]" = {}

    def _holistic_mep_voltage(self, v_in: "float | None") -> float:
        """The eq. (5) minimum-energy voltage for this converter (cached)."""
        key = None if v_in is None else round(v_in, 6)
        if key not in self._mep_cache:
            from repro.core.mep import HolisticMepOptimizer

            optimizer = HolisticMepOptimizer(self.system, input_voltage_v=v_in)
            self._mep_cache[key] = optimizer.holistic_mep(
                self.regulator_name
            ).voltage_v
        return self._mep_cache[key]

    # -- eq. (8)/(10): energy required from the source ------------------------------

    def required_source_energy(
        self, workload: Workload, completion_time_s: float, v_in: "float | None" = None
    ) -> float:
        """Source energy to finish ``workload`` in ``completion_time_s``.

        Implements eq. (10): the deadline fixes the average frequency,
        the frequency fixes the minimum supply voltage, and the supply
        voltage fixes the per-cycle energy, inflated by the converter
        efficiency at that operating point.
        """
        if completion_time_s <= 0.0:
            raise ModelParameterError(
                f"completion time must be positive, got {completion_time_s}"
            )
        processor = self.system.processor
        f_required = workload.cycles / completion_time_s
        # The supply must reach the deadline's speed but should never
        # drop below the holistic MEP: past that point the right
        # strategy is to run at the MEP, finish early, and halt
        # (stretching the work out any slower only feeds leakage and
        # converter overhead).  The converter's minimum output is a
        # hard floor.
        v = max(
            processor.voltage_for_frequency(f_required),
            self._holistic_mep_voltage(v_in),
            self.regulator.min_output_v,
            processor.min_operating_v,
        )
        f_run = max(f_required, float(processor.max_frequency(v)))
        energy_per_cycle = float(processor.energy_per_cycle(v, f_run))
        power = float(processor.power(v, f_run))
        efficiency = self.regulator.efficiency(v, power, v_in=v_in)
        if efficiency <= 0.0:
            raise InfeasibleOperatingPointError(
                f"{self.regulator_name} cannot deliver "
                f"{power * 1e3:.2f} mW at {v:.3f} V"
            )
        return workload.cycles * energy_per_cycle / efficiency

    # -- eq. (11): energy available within T -----------------------------------------

    def available_energy(
        self,
        completion_time_s: float,
        irradiance: float,
        v_start: float,
        v_end: float,
    ) -> float:
        """Solar intake at MPP plus the capacitor swing (eq. 11)."""
        if completion_time_s <= 0.0:
            raise ModelParameterError(
                f"completion time must be positive, got {completion_time_s}"
            )
        if v_end > v_start:
            raise ModelParameterError(
                f"v_end {v_end} must not exceed v_start {v_start}"
            )
        mpp = self.system.mpp(irradiance)
        cap_energy = (
            0.5
            * self.system.node_capacitance_f
            * (v_start * v_start - v_end * v_end)
        )
        return mpp.power_w * completion_time_s + cap_energy

    # -- Fig. 9(a): the feasibility frontier --------------------------------------------

    def fastest_completion_time(
        self,
        workload: Workload,
        irradiance: float,
        v_start: float,
        v_end: float,
        t_max_s: float = 10.0,
    ) -> float:
        """The Ein/Eout intersection of Fig. 9(a), by bisection.

        Required energy grows as T shrinks while available energy
        shrinks, so the crossing is unique when it exists.
        """
        mpp_v = self.system.mpp(irradiance).voltage_v

        def slack(t: float) -> float:
            try:
                required = self.required_source_energy(workload, t, v_in=mpp_v)
            except (OperatingRangeError, InfeasibleOperatingPointError):
                return -float("inf")
            return self.available_energy(t, irradiance, v_start, v_end) - required

        if slack(t_max_s) < 0.0:
            raise InfeasibleOperatingPointError(
                f"workload infeasible even in {t_max_s} s at irradiance "
                f"{irradiance}"
            )
        low = workload.cycles / float(
            self.system.processor.max_frequency(
                self.system.processor.max_operating_v
            )
        )
        if slack(low) >= 0.0:
            return low
        high = t_max_s
        for _ in range(100):
            mid = 0.5 * (low + high)
            if slack(mid) >= 0.0:
                high = mid
            else:
                low = mid
            if high - low < 1e-9:
                break
        return high

    # -- planning ------------------------------------------------------------------------

    def plan(
        self,
        workload: Workload,
        v_start: float,
        accelerate_fraction: float = 0.4,
        bypass_margin_v: float = 0.02,
    ) -> SprintPlan:
        """Build the executable sprint schedule for a deadline workload.

        The regulated setpoint is sized for the sprint speed; the
        acceleration threshold is placed ``accelerate_fraction`` of the
        way down from the start voltage to the bypass voltage
        (matching the measured demo's 1.2 V -> 0.9 V slow phase).
        """
        if workload.deadline_s is None:
            raise ModelParameterError(
                "sprint planning needs a workload with a deadline"
            )
        if not 0.0 < accelerate_fraction < 1.0:
            raise ModelParameterError(
                f"accelerate fraction must be in (0, 1), got {accelerate_fraction}"
            )
        processor = self.system.processor
        f_avg = workload.cycles / workload.deadline_s
        f_slow = f_avg * (1.0 - self.sprint_factor)
        f_fast = f_avg * (1.0 + self.sprint_factor)
        try:
            v_out = processor.voltage_for_frequency(f_fast)
        except OperatingRangeError as exc:
            raise InfeasibleOperatingPointError(
                f"deadline needs {f_fast / 1e6:.0f} MHz, beyond the "
                "processor's reach"
            ) from exc
        v_out = max(v_out, self.regulator.min_output_v)
        if v_out > self.regulator.max_output_v:
            raise InfeasibleOperatingPointError(
                f"deadline needs {v_out:.3f} V, above the "
                f"{self.regulator_name} range"
            )
        bypass_below = (
            min_input_voltage_for_output(self.regulator, v_out) + bypass_margin_v
        )
        if bypass_below >= v_start:
            raise InfeasibleOperatingPointError(
                f"start voltage {v_start:.3f} V is already below the "
                f"regulator's minimum input {bypass_below:.3f} V"
            )
        accelerate_below = v_start - accelerate_fraction * (v_start - bypass_below)
        return SprintPlan(
            output_voltage_v=v_out,
            slow_frequency_hz=f_slow,
            fast_frequency_hz=f_fast,
            accelerate_below_v=accelerate_below,
            bypass_below_v=bypass_below,
            cycles=workload.cycles,
            sprint_factor=self.sprint_factor,
        )

    # -- eqs. (12)-(13): analytic gain estimates -----------------------------------------

    def analytic_extra_solar_energy(
        self,
        workload: Workload,
        irradiance: float,
        v_start: float,
        steps: int = 2000,
    ) -> "tuple[float, float]":
        """First-order estimate of the sprint's extra solar intake.

        Integrates the one-node energy balance for the constant-speed
        and the two-phase sprint schedules (same completion time) and
        returns ``(E_solar_constant, E_solar_sprint)``.  This is the
        quantity eq. (12) approximates; the full waveform-level number
        comes from the transient simulator.
        """
        if workload.deadline_s is None:
            raise ModelParameterError("needs a workload with a deadline")
        if steps < 16:
            raise ModelParameterError(f"steps must be >= 16, got {steps}")
        processor = self.system.processor
        cell = self.system.cell
        t_total = workload.deadline_s
        f_avg = workload.cycles / t_total

        def draw_power(frequency_hz: float, v_in: float) -> float:
            v = processor.voltage_for_frequency(frequency_hz)
            p = float(processor.power(v, frequency_hz))
            try:
                return self.regulator.input_power(v, p, v_in=v_in)
            except OperatingRangeError:
                # Below regulated range: fall back to bypass draw.
                v_eval = min(max(v_in, processor.min_operating_v),
                             processor.max_operating_v)
                f_cap = min(frequency_hz, float(processor.max_frequency(v_eval)))
                return float(processor.power(v_eval, f_cap))

        def integrate(schedule: "Callable[[float], float]") -> float:
            capacitance = self.system.node_capacitance_f
            v_node = v_start
            dt = t_total / steps
            solar = 0.0
            for i in range(steps):
                t = (i + 0.5) * dt
                p_pv = float(cell.power(v_node, irradiance))
                p_draw = draw_power(schedule(t), v_node)
                solar += p_pv * dt
                dv = (p_pv - p_draw) / (capacitance * max(v_node, 1e-3)) * dt
                v_node = max(v_node + dv, 1e-3)
            return solar

        constant = integrate(lambda t: f_avg)
        beta = self.sprint_factor
        sprint = integrate(
            lambda t: f_avg * (1.0 - beta)
            if t < 0.5 * t_total
            else f_avg * (1.0 + beta)
        )
        return constant, sprint

    def bypass_energy_extension(
        self, v_out: float, v_floor: "float | None" = None
    ) -> "tuple[float, float]":
        """Capacitor energy unlocked by the bypass switch (eq. 13 regime).

        Returns ``(regulated_only_j, with_bypass_j)``: the capacitor
        energy usable when discharge must stop at the regulator's
        minimum input, versus discharging on through the bypass down to
        the processor's own minimum (or ``v_floor``).
        """
        v_reg_min = min_input_voltage_for_output(self.regulator, v_out)
        if v_floor is None:
            v_floor = self.system.processor.min_operating_v
        if v_floor > v_reg_min:
            raise ModelParameterError(
                f"floor {v_floor} above regulator minimum input {v_reg_min}"
            )
        capacitance = self.system.node_capacitance_f
        v_start = self.regulator.nominal_input_v
        regulated = 0.5 * capacitance * (v_start**2 - v_reg_min**2)
        with_bypass = 0.5 * capacitance * (v_start**2 - v_floor**2)
        return regulated, with_bypass


class SprintController(DvfsController):
    """Executes a :class:`SprintPlan` inside the transient simulator.

    Phase logic (comparator-style, on node voltage):

    1. node above ``accelerate_below_v``: regulated, slow clock;
    2. node below it: regulated, sprint clock;
    3. node below ``bypass_below_v``: bypass switch closed, clock at
       whatever the sagging node sustains;
    4. work complete: halt (the paper then duty-cycles to restore the
       capacitor; the halt lets the node recharge, visible in the
       waveforms).

    The bypass transition is sticky (no flapping back when the node
    recovers slightly after the load change).

    When given a ``telemetry`` sink the controller traces its phase
    progression (``slow`` -> ``sprint`` -> ``bypass`` -> ``done``) and,
    when ``deadline_s`` is known, counts ``sprint.deadline_misses`` if
    the work completes past the deadline (or the run ends with work
    still outstanding at a decision past it).
    """

    def __init__(
        self,
        plan: SprintPlan,
        allow_bypass: bool = True,
        telemetry: "Telemetry | None" = None,
        deadline_s: "float | None" = None,
    ) -> None:
        self.plan = plan
        self.allow_bypass = allow_bypass
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.deadline_s = deadline_s
        self._bypassed = False
        self._phase: "str | None" = None
        self._miss_counted = False

    def reset(self) -> None:
        self._bypassed = False
        self._phase = None
        self._miss_counted = False

    def _enter_phase(self, phase: str, view: ControllerView) -> None:
        if phase == self._phase:
            return
        tel = self.telemetry
        if self._phase is not None:
            tel.count("sprint.phase_changes")
        tel.event(
            "sprint.phase", view.time_s, track="sprint",
            phase=phase, node_v=view.node_voltage_v,
            cycles_done=float(view.cycles_done),
        )
        self._phase = phase

    def _check_deadline(self, view: ControllerView) -> None:
        # Fires once, at the first decision past the deadline with work
        # still outstanding -- whether or not the job later finishes.
        if (
            self.deadline_s is None
            or self._miss_counted
            or view.time_s <= self.deadline_s
            or view.cycles_done >= self.plan.cycles
        ):
            return
        self._miss_counted = True
        self.telemetry.count("sprint.deadline_misses")
        self.telemetry.event(
            "sprint.deadline_miss", view.time_s, track="sprint",
            deadline_s=self.deadline_s,
            overrun_s=view.time_s - self.deadline_s,
            cycles_done=float(view.cycles_done),
        )

    def decide(self, view: ControllerView) -> ControlDecision:
        plan = self.plan
        self._check_deadline(view)
        if view.cycles_done >= plan.cycles:
            self._enter_phase("done", view)
            return ControlDecision(mode="halt", frequency_hz=0.0)
        if self.allow_bypass and (
            self._bypassed or view.node_voltage_v <= plan.bypass_below_v
        ):
            self._bypassed = True
            self._enter_phase("bypass", view)
            return ControlDecision(
                mode="bypass", frequency_hz=plan.fast_frequency_hz
            )
        if view.node_voltage_v <= plan.accelerate_below_v:
            self._enter_phase("sprint", view)
            return ControlDecision(
                mode="regulated",
                frequency_hz=plan.fast_frequency_hz,
                output_voltage_v=plan.output_voltage_v,
            )
        self._enter_phase("slow", view)
        return ControlDecision(
            mode="regulated",
            frequency_hz=plan.slow_frequency_hz,
            output_voltage_v=plan.output_voltage_v,
        )
