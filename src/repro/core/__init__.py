"""The paper's contribution: holistic energy management.

Four schemes, each mapping to a section of the paper:

* :mod:`repro.core.operating_point` -- the holistic optimal voltage
  point under the solar MPP constraint (Section IV, eqs. 1-4);
* :mod:`repro.core.mep` -- the holistic minimum energy point with the
  regulator's efficiency folded in (Section V, eq. 5);
* :mod:`repro.core.mppt` -- MPP tracking from capacitor discharge
  timing (Section VI-A, eqs. 6-7);
* :mod:`repro.core.sprint` -- "sprinting" deadline scheduling with
  regulator bypass (Section VI-B, eqs. 8-13).

:mod:`repro.core.scheduler` combines them into the policy engine a
deployed node would run, and :mod:`repro.core.system` bundles the
hardware substrates into the test system of Section VII.
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionReport,
    PeriodicTask,
)
from repro.core.system import EnergyHarvestingSoC, paper_system
from repro.core.operating_point import (
    OperatingPoint,
    OperatingPointOptimizer,
)
from repro.core.mep import HolisticMepOptimizer, MepComparison
from repro.core.duty_cycle import (
    DutyCycleController,
    DutyCycleScheduler,
    SustainableRate,
)
from repro.core.mppt import DischargeTimeMppTracker, MppTrackingController
from repro.core.sprint import SprintScheduler, SprintPlan, SprintController
from repro.core.scheduler import HolisticEnergyManager, OperatingPlan
from repro.core.policies import Policy

__all__ = [
    "AdmissionController",
    "AdmissionReport",
    "PeriodicTask",
    "EnergyHarvestingSoC",
    "paper_system",
    "OperatingPoint",
    "OperatingPointOptimizer",
    "HolisticMepOptimizer",
    "MepComparison",
    "DutyCycleScheduler",
    "DutyCycleController",
    "SustainableRate",
    "DischargeTimeMppTracker",
    "MppTrackingController",
    "SprintScheduler",
    "SprintPlan",
    "SprintController",
    "HolisticEnergyManager",
    "OperatingPlan",
    "Policy",
]
