"""Energy admission control for periodic task sets.

A deployed node rarely runs one job: it mixes periodic work (sense,
classify, transmit, housekeeping).  Whether a task set is sustainable
at a light level is an energy-bandwidth question, the harvesting
analogue of classical utilisation-based schedulability:

    sum over tasks of  E_source(task) * rate(task)  <=  P_mpp(s)

where each task's source energy is evaluated at its own best operating
point (the duty-cycle scheduler's machinery, honouring per-task
activity factors and latency constraints).  :class:`AdmissionController`
answers admit/reject, reports the utilisation breakdown, and finds the
dimmest light that still carries the set -- the number a deployment
survey actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.duty_cycle import DutyCycleScheduler
from repro.core.system import EnergyHarvestingSoC
from repro.errors import (
    InfeasibleOperatingPointError,
    ModelParameterError,
    OperatingRangeError,
)
from repro.processor.workloads import Workload


@dataclass(frozen=True)
class PeriodicTask:
    """A workload released every ``period_s`` seconds."""

    workload: Workload
    period_s: float
    #: Per-job latency bound; defaults to the workload's deadline, or
    #: the period itself when neither is given.
    max_latency_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ModelParameterError(
                f"period must be positive, got {self.period_s}"
            )
        latency = self.effective_latency_s
        if latency > self.period_s:
            raise ModelParameterError(
                f"latency bound {latency} exceeds the period {self.period_s}"
            )

    @property
    def effective_latency_s(self) -> float:
        """The binding per-job completion bound."""
        if self.max_latency_s is not None:
            return self.max_latency_s
        if self.workload.deadline_s is not None:
            return self.workload.deadline_s
        return self.period_s

    @property
    def rate_hz(self) -> float:
        """Job release rate."""
        return 1.0 / self.period_s


@dataclass(frozen=True)
class TaskAdmission:
    """Per-task admission accounting."""

    task: PeriodicTask
    job_energy_j: float
    power_demand_w: float  # job_energy * rate
    utilisation: float  # share of the harvest budget


@dataclass(frozen=True)
class AdmissionReport:
    """Outcome of one admission test."""

    irradiance: float
    harvest_power_w: float
    admitted: bool
    total_utilisation: float
    tasks: "tuple[TaskAdmission, ...]"

    @property
    def headroom_w(self) -> float:
        """Unclaimed harvest power (negative when over-subscribed)."""
        return self.harvest_power_w * (1.0 - self.total_utilisation)


class AdmissionController:
    """Energy schedulability analysis for periodic task sets.

    Parameters
    ----------
    system / regulator_name:
        The platform; per-task operating points come from the
        duty-cycle scheduler (holistic MEP or latency-constrained).
    margin:
        Safety factor on the harvest budget (0.1 reserves 10% for
        tracking overhead, comparators and estimation error).
    """

    def __init__(
        self,
        system: EnergyHarvestingSoC,
        regulator_name: str = "sc",
        margin: float = 0.1,
    ) -> None:
        if not 0.0 <= margin < 1.0:
            raise ModelParameterError(
                f"margin must be in [0, 1), got {margin}"
            )
        self.system = system
        self.scheduler = DutyCycleScheduler(system, regulator_name)
        self.margin = margin

    def _job_energy(self, task: PeriodicTask, irradiance: float) -> float:
        """Source energy for one job at its best feasible point."""
        processor = self.system.processor
        scaled_system = self.system
        workload = task.workload
        # Honour the workload's activity factor by swapping the
        # processor model for the analysis.
        if workload.activity != processor.dynamic.activity:
            from dataclasses import replace as dc_replace

            scaled_system = dc_replace(
                self.system, processor=processor.with_activity(workload.activity)
            )
        scheduler = DutyCycleScheduler(
            scaled_system, self.scheduler.regulator_name
        )
        rate = scheduler.sustainable_rate_with_latency(
            workload, irradiance, task.effective_latency_s
        )
        return rate.job_source_energy_j

    def evaluate(
        self, tasks: Sequence[PeriodicTask], irradiance: float
    ) -> AdmissionReport:
        """Admit or reject a task set at one light level."""
        if not tasks:
            raise ModelParameterError("task set must not be empty")
        budget = self.system.mpp(irradiance).power_w * (1.0 - self.margin)
        if budget <= 0.0:
            raise InfeasibleOperatingPointError(
                f"no harvest budget at irradiance {irradiance}"
            )
        admissions = []
        total = 0.0
        for task in tasks:
            try:
                energy = self._job_energy(task, irradiance)
            except (InfeasibleOperatingPointError, OperatingRangeError):
                # The task has no feasible operating point at this
                # light (too dim, or the latency bound is beyond the
                # chip): it cannot be admitted, full stop.
                energy = float("inf")
            demand = energy * task.rate_hz
            utilisation = demand / budget
            total += utilisation
            admissions.append(
                TaskAdmission(
                    task=task,
                    job_energy_j=energy,
                    power_demand_w=demand,
                    utilisation=utilisation,
                )
            )
        return AdmissionReport(
            irradiance=irradiance,
            harvest_power_w=budget,
            admitted=total <= 1.0,
            total_utilisation=total,
            tasks=tuple(admissions),
        )

    def minimum_irradiance(
        self,
        tasks: Sequence[PeriodicTask],
        low: float = 0.02,
        high: float = 1.2,
        tolerance: float = 1e-3,
    ) -> float:
        """Dimmest light at which the set is still admitted (bisection).

        Raises :class:`InfeasibleOperatingPointError` when even ``high``
        cannot carry the set.
        """
        def admitted(irradiance: float) -> bool:
            try:
                return self.evaluate(tasks, irradiance).admitted
            except (InfeasibleOperatingPointError, ModelParameterError):
                return False

        if not admitted(high):
            raise InfeasibleOperatingPointError(
                f"task set infeasible even at irradiance {high}"
            )
        if admitted(low):
            return low
        lo, hi = low, high
        while hi - lo > tolerance:
            mid = 0.5 * (lo + hi)
            if admitted(mid):
                hi = mid
            else:
                lo = mid
        return hi
