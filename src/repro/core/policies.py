"""Named energy-management policies.

The experiments compare the paper's holistic schemes against the
conventional module-local strategies.  :class:`Policy` names each one;
:mod:`repro.core.scheduler` and :mod:`repro.baselines` implement them.
"""

from __future__ import annotations

import enum


class Policy(enum.Enum):
    """Energy-management strategies the experiments compare.

    The first three are the baselines the paper argues against; the
    last three are the paper's contributions.
    """

    #: Direct solar-to-processor connection, no converter (the PVS-style
    #: setup): the system operates at the I-V intersection of Fig. 6(a).
    RAW_SOLAR = "raw-solar"

    #: Regulator always on, cell held at MPP, processor voltage chosen
    #: by the conventional module-local rule (its own best point or its
    #: own MEP), converter efficiency ignored in the choice.
    CONVENTIONAL_REGULATED = "conventional-regulated"

    #: Run at the processor's conventional minimum energy point through
    #: the regulator (the Section V strawman).
    CONVENTIONAL_MEP = "conventional-mep"

    #: The holistic optimal voltage point of Section IV: regulator
    #: efficiency folded into the choice, bypass engaged when it wins.
    HOLISTIC_PERFORMANCE = "holistic-performance"

    #: The holistic minimum energy point of Section V (eq. 5).
    HOLISTIC_MEP = "holistic-mep"

    #: Section VI: sprint scheduling with end-of-discharge bypass for
    #: deadline workloads.
    HOLISTIC_SPRINT = "holistic-sprint"

    @property
    def is_holistic(self) -> bool:
        """True for the paper's schemes, False for baselines."""
        return self in (
            Policy.HOLISTIC_PERFORMANCE,
            Policy.HOLISTIC_MEP,
            Policy.HOLISTIC_SPRINT,
        )

    @classmethod
    def baselines(cls) -> "tuple[Policy, ...]":
        """The conventional strategies."""
        return (cls.RAW_SOLAR, cls.CONVENTIONAL_REGULATED, cls.CONVENTIONAL_MEP)

    @classmethod
    def holistic(cls) -> "tuple[Policy, ...]":
        """The paper's strategies."""
        return (
            cls.HOLISTIC_PERFORMANCE,
            cls.HOLISTIC_MEP,
            cls.HOLISTIC_SPRINT,
        )
