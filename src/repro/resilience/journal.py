"""Append-only campaign journal: checkpoint/restore for the executor.

The paper's nodes survive power loss by checkpointing committed work to
NVM and resuming from the last valid snapshot; this module applies the
identical discipline to campaign execution.  Every completed chunk of
runs is appended to a JSONL journal as soon as it lands, so a campaign
interrupted at any point -- SIGKILL, OOM, power loss -- resumes by
replaying the journal and dispatching only the missing work.  Because
every run is a pure function of its work item, the resumed campaign's
final summary is bit-identical to an uninterrupted one.

Journal format (one JSON object per line)::

    {"crc": <crc32>, "body": {"kind": "header", "version": 1,
                              "key": <campaign key>, ...}}
    {"crc": <crc32>, "body": {"kind": "chunk", "items": [3, 4, 5],
                              "payload": <base64 pickle of results>}}
    {"crc": <crc32>, "body": {"kind": "quarantine",
                              "failure": {...RunFailure fields...}}}

``crc`` covers the canonical JSON serialization of ``body``, exactly as
the intermittent runtime's :class:`~repro.intermittent.checkpoint.
CheckpointStore` guards its slots: a line truncated or bit-flipped by a
crash mid-write fails its CRC and is skipped on load, never trusted.
The ``key`` is a :func:`repro.parallel.ids.stable_fingerprint` of the
campaign's defining inputs; resuming with a journal written for a
different campaign raises :class:`repro.errors.JournalError` instead of
silently splicing foreign results.

Journals hold pickled result objects and are trusted local state --
share them like you would a results file, not like a config file.
"""

from __future__ import annotations

import base64
import json
import pickle
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import JournalError
from repro.resilience.records import RunFailure

_VERSION = 1


def _canonical_body(body: Dict[str, Any]) -> bytes:
    """The byte form the line CRC covers."""
    return json.dumps(
        body, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


@dataclass(frozen=True)
class JournalState:
    """Everything a journal knows: results and quarantines by index."""

    results: Dict[int, Any]
    failures: Tuple[RunFailure, ...]

    @property
    def completed_indices(self) -> Tuple[int, ...]:
        return tuple(sorted(self.results))


class CampaignJournal:
    """One campaign's append-only completion journal.

    ``key`` must be a pure function of the campaign's defining inputs
    (spec, config, work list); the header pins it so a journal can
    never be resumed against different work.  Records are flushed
    line-by-line, so the journal is valid after any prefix of the
    campaign -- the whole point.
    """

    def __init__(self, path: Union[str, Path], key: str) -> None:
        if not key:
            raise JournalError("journal key must be a non-empty string")
        self._path = Path(path)
        self._key = key
        self._header_written = False

    @property
    def path(self) -> Path:
        return self._path

    @property
    def key(self) -> str:
        return self._key

    # -- writing -------------------------------------------------------------

    def record_chunk(
        self, indices: Sequence[int], results: Sequence[Any]
    ) -> None:
        """Append one completed chunk (parallel lists, any length)."""
        if len(indices) != len(results):
            raise JournalError(
                f"chunk indices/results length mismatch: "
                f"{len(indices)} != {len(results)}"
            )
        if not indices:
            return
        payload = pickle.dumps(tuple(results), protocol=4)
        self._append(
            {
                "kind": "chunk",
                "items": [int(i) for i in indices],
                "payload": base64.b64encode(payload).decode("ascii"),
            }
        )

    def record_quarantine(self, failure: RunFailure) -> None:
        """Append one quarantined run so resume carries it forward."""
        self._append({"kind": "quarantine", "failure": failure.as_dict()})

    def _append(self, body: Dict[str, Any]) -> None:
        if not self._header_written:
            self._ensure_header()
        encoded = _canonical_body(body)
        line = json.dumps(
            {"crc": zlib.crc32(encoded), "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def _ensure_header(self) -> None:
        """Write the header exactly once per journal file."""
        if self._path.exists() and self._path.stat().st_size > 0:
            # Existing journal: load() already validated (or will
            # validate) the key; appending to it is resumption.
            self._header_written = True
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        body = {"kind": "header", "version": _VERSION, "key": self._key}
        encoded = _canonical_body(body)
        line = json.dumps(
            {"crc": zlib.crc32(encoded), "body": body},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._path.open("w", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
        self._header_written = True

    # -- reading -------------------------------------------------------------

    def load(self) -> JournalState:
        """Replay the journal into completed results and quarantines.

        Missing file means a fresh campaign (empty state).  Lines that
        fail JSON parsing or their CRC -- the signature of a crash
        mid-append -- are skipped; everything before and after them is
        still honoured, because lines are independent.  A valid header
        with the wrong campaign key raises :class:`JournalError`.
        """
        if not self._path.exists():
            return JournalState(results={}, failures=())
        results: Dict[int, Any] = {}
        failures: Dict[int, RunFailure] = {}
        saw_header = False
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                body = self._valid_body(line)
                if body is None:
                    continue
                kind = body.get("kind")
                if kind == "header":
                    if body.get("key") != self._key:
                        raise JournalError(
                            f"journal {self._path} was written for "
                            f"campaign key {body.get('key')!r}, not "
                            f"{self._key!r}; refusing to splice foreign "
                            "results (use a fresh journal path)"
                        )
                    saw_header = True
                elif kind == "chunk" and saw_header:
                    self._load_chunk(body, results)
                elif kind == "quarantine" and saw_header:
                    try:
                        failure = RunFailure.from_dict(body["failure"])
                    except (KeyError, TypeError, ValueError):
                        continue
                    failures[failure.index] = failure
        self._header_written = saw_header
        ordered = tuple(
            failures[index] for index in sorted(failures)
        )
        return JournalState(results=results, failures=ordered)

    @staticmethod
    def _valid_body(line: str) -> Optional[Dict[str, Any]]:
        """Parse one line, returning its body only if the CRC holds."""
        stripped = line.strip()
        if not stripped:
            return None
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        body = record.get("body")
        if not isinstance(body, dict) or "crc" not in record:
            return None
        if zlib.crc32(_canonical_body(body)) != record["crc"]:
            return None
        return body

    @staticmethod
    def _load_chunk(
        body: Dict[str, Any], results: Dict[int, Any]
    ) -> None:
        """Merge one chunk line; drop it wholesale if malformed."""
        try:
            indices: List[int] = [int(i) for i in body["items"]]
            payload = base64.b64decode(body["payload"])
            values = pickle.loads(payload)
        except (KeyError, TypeError, ValueError, pickle.PickleError):
            return
        if len(values) != len(indices):
            return
        for index, value in zip(indices, values):
            results[index] = value
