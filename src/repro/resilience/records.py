"""Structured outcomes and retry policy for supervised execution.

The supervised executor never lets one bad run poison a campaign: every
failure is reduced to a :class:`RunFailure` record (which run, what it
raised, how many attempts it got) and every campaign ends with a
:class:`SupervisedOutcome` that accounts for *all* submitted work --
completed results, quarantined failures, and the supervisor's own
bookkeeping -- instead of an exception that discards hours of finished
runs.

:class:`RetryPolicy` is the knob set: how many re-dispatches a failing
run gets, how long the supervisor backs off between them
(deterministic bounded exponential -- retries of a pure task are
bit-identical, so the backoff only paces infrastructure recovery, it
never changes results), and the per-run watchdog deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ModelParameterError, QuarantineError

#: Failure classification carried on every :class:`RunFailure`.
#:
#: * ``exception`` -- the task raised inside a worker (captured with
#:   its traceback; the worker and its siblings keep running);
#: * ``timeout`` -- the run exceeded the watchdog deadline and its
#:   worker was killed;
#: * ``worker-death`` -- the worker process died (crash, OOM-kill,
#:   ``os._exit``) while holding the run;
#: * ``corruption`` -- the chunk result failed its CRC integrity check
#:   on receipt.
FAILURE_KINDS: Tuple[str, ...] = (
    "exception",
    "timeout",
    "worker-death",
    "corruption",
)


@dataclass(frozen=True)
class RunFailure:
    """One run that could not be completed, with its full context.

    ``index`` is the run's position in the submitted work list (for
    campaigns: the seed offset), so the culprit can be replayed with
    :func:`repro.faults.campaign.replay_transient_run` or re-submitted
    alone.  ``attempts`` counts every execution attempt the run
    received before quarantine.
    """

    index: int
    item_repr: str
    error: str
    traceback: str
    attempts: int
    kind: str

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelParameterError(
                f"failure index must be >= 0, got {self.index}"
            )
        if self.attempts < 1:
            raise ModelParameterError(
                f"failure attempts must be >= 1, got {self.attempts}"
            )
        if self.kind not in FAILURE_KINDS:
            raise ModelParameterError(
                f"failure kind must be one of {FAILURE_KINDS}, "
                f"got {self.kind!r}"
            )

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready form (journal lines, CLI reports)."""
        return {
            "index": self.index,
            "item_repr": self.item_repr,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "kind": self.kind,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "RunFailure":
        """Rebuild a failure from its :meth:`as_dict` form."""
        return RunFailure(
            index=int(payload["index"]),
            item_repr=str(payload["item_repr"]),
            error=str(payload["error"]),
            traceback=str(payload["traceback"]),
            attempts=int(payload["attempts"]),
            kind=str(payload["kind"]),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, backoff and watchdog configuration for one campaign.

    ``max_retries`` counts *re*-dispatches: a run gets ``1 +
    max_retries`` attempts before quarantine.  ``run_timeout_s`` is the
    per-run watchdog deadline (a chunk of N runs gets ``N *
    run_timeout_s``); ``None`` disables the deadline -- dead workers
    are still detected by process liveness, but a genuinely hung run
    is then indistinguishable from a slow one.  ``startup_grace_s``
    bounds how long the supervisor waits for a spawn worker to finish
    importing before declaring the environment broken.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    run_timeout_s: Optional[float] = None
    startup_grace_s: float = 120.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ModelParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0.0:
            raise ModelParameterError(
                f"backoff base must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise ModelParameterError(
                f"backoff cap {self.backoff_cap_s} must be >= base "
                f"{self.backoff_base_s}"
            )
        if self.run_timeout_s is not None and self.run_timeout_s <= 0.0:
            raise ModelParameterError(
                f"run timeout must be positive, got {self.run_timeout_s}"
            )
        if self.startup_grace_s <= 0.0:
            raise ModelParameterError(
                f"startup grace must be positive, got {self.startup_grace_s}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a run receives before quarantine."""
        return self.max_retries + 1

    def backoff_s(self, attempt: int) -> float:
        """Deterministic bounded backoff before dispatching ``attempt``.

        ``attempt`` is the attempt about to run (2 for the first
        retry).  Doubles from ``backoff_base_s`` and saturates at
        ``backoff_cap_s``; no jitter -- retried runs are bit-identical,
        so randomising the pacing buys nothing and costs determinism.
        """
        if attempt < 2:
            return 0.0
        if self.backoff_base_s <= 0.0:
            return 0.0
        return min(
            self.backoff_base_s * 2.0 ** float(attempt - 2),
            self.backoff_cap_s,
        )

    def deadline_s(self, item_count: int) -> Optional[float]:
        """Watchdog budget for a chunk of ``item_count`` runs."""
        if self.run_timeout_s is None:
            return None
        return self.run_timeout_s * max(1, item_count)


@dataclass(frozen=True)
class SupervisorStats:
    """The supervisor's own accounting for one campaign.

    Observability only: none of these numbers feed back into results.
    ``retries``/``timeouts``/``worker_deaths`` depend on which faults
    actually fired, so (unlike the result list) they are not part of
    the bit-identity contract between worker counts.
    """

    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    corrupt_chunks: int = 0
    quarantined: int = 0
    journal_hits: int = 0
    worker_respawns: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "corrupt_chunks": self.corrupt_chunks,
            "quarantined": self.quarantined,
            "journal_hits": self.journal_hits,
            "worker_respawns": self.worker_respawns,
        }


@dataclass(frozen=True)
class SupervisedOutcome:
    """Everything the supervised executor knows at the end of a campaign.

    ``results`` holds the completed runs' return values in submission
    order; ``indices`` names the submission index of each (the two are
    aligned).  ``failures`` holds one :class:`RunFailure` per
    quarantined run, in index order.  Every submitted item appears in
    exactly one of the two -- nothing is silently dropped.
    """

    results: Tuple[Any, ...]
    indices: Tuple[int, ...]
    failures: Tuple[RunFailure, ...]
    stats: SupervisorStats

    @property
    def complete(self) -> bool:
        """True when every submitted run completed."""
        return not self.failures

    def require_complete(self) -> List[Any]:
        """The full ordered result list, or :class:`QuarantineError`.

        The strict mode for callers that cannot use partial results;
        the raised error still carries ``failures`` (and the message
        names the culprits) so the diagnosis survives the raise.
        """
        if self.failures:
            worst = ", ".join(
                f"#{f.index} ({f.kind}: {f.error})"
                for f in self.failures[:3]
            )
            suffix = (
                f" and {len(self.failures) - 3} more"
                if len(self.failures) > 3
                else ""
            )
            raise QuarantineError(
                f"{len(self.failures)} run(s) quarantined after "
                f"exhausting retries: {worst}{suffix}",
                failures=self.failures,
            )
        return list(self.results)
