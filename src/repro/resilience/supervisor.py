"""Supervised campaign execution: the executor that can lose a worker.

:func:`repro.parallel.executor.run_sharded` is the fair-weather path:
one task exception, hung worker or ``SIGKILL`` discards every completed
run of a campaign.  This module wraps the same sharded execution model
in the checkpoint/restore discipline the paper applies to battery-less
nodes:

* **per-run supervision** -- task exceptions are captured inside the
  worker as structured outcomes, never allowed to poison the pool;
* **retry with bounded backoff** -- failed runs are re-dispatched (a
  run is a pure function of its work item, so a retry is bit-identical)
  and quarantined as :class:`~repro.resilience.records.RunFailure`
  after ``max_retries`` re-dispatches, never silently dropped;
* **watchdog** -- the supervisor owns its worker processes outright:
  death is detected by process liveness (no timeout needed), hangs by
  per-chunk deadlines, and either way the worker is respawned and the
  lost chunk re-dispatched;
* **journaling** -- completed chunks append to a
  :class:`~repro.resilience.journal.CampaignJournal`, so an interrupted
  campaign resumes skipping finished work with a bit-identical final
  result;
* **chaos** -- a :class:`~repro.resilience.chaos.ChaosSpec` injects
  seeded crashes, hangs, exceptions and corrupted results to prove all
  of the above in tests.

The executor keeps :mod:`repro.parallel`'s determinism contract: the
completed-result list is assembled by submission index, so it is
bit-identical to the serial path at any worker count, with any retry
schedule, across any interruption/resume split.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import time
import traceback as traceback_module
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import ModelParameterError, ResilienceError
from repro.parallel.executor import default_chunk_size
from repro.parallel.progress import NullProgress
from repro.resilience.chaos import (
    CORRUPT,
    ERROR,
    ChaosSpec,
    chaos_decision,
    corrupt_payload,
    execute_pre_injection,
    injected_task_error,
)
from repro.resilience.journal import CampaignJournal
from repro.resilience.records import (
    RetryPolicy,
    RunFailure,
    SupervisedOutcome,
    SupervisorStats,
)
from repro.telemetry.session import NULL_TELEMETRY, Telemetry

#: Parent poll interval while waiting on worker messages [s].  Pure
#: pacing: results are collected whenever they arrive, this only bounds
#: the latency of liveness/deadline checks.
_POLL_S = 0.02

#: Pre-ready worker deaths tolerated (per pool slot) before the
#: environment itself is declared broken.
_STARTUP_DEATH_BUDGET = 2


@dataclass(frozen=True)
class ResilienceConfig:
    """Caller-facing bundle: how a campaign should survive failures.

    ``partial_results=True`` (the default) reports quarantined runs on
    the summary instead of raising; ``False`` restores fail-stop
    semantics via :meth:`SupervisedOutcome.require_complete` -- but
    only after every retry is exhausted and everything completable has
    completed (and been journaled).
    """

    policy: RetryPolicy = RetryPolicy()
    journal_path: Optional[str] = None
    partial_results: bool = True
    chaos: Optional[ChaosSpec] = None


# -- work units ---------------------------------------------------------------


@dataclass
class _Unit:
    """One dispatchable chunk of ``(submission_index, item)`` pairs."""

    unit_id: int
    attempt: int
    items: Tuple[Tuple[int, Any], ...]
    #: Backoff to honour before this attempt is dispatched [s].
    delay_s: float = 0.0
    #: Parallel path: monotonic timestamp the unit becomes eligible.
    ready_at: float = 0.0


@dataclass(frozen=True)
class _Envelope:
    """A completed unit as shipped back from a worker.

    ``payload`` is the pickled tuple of per-item outcomes and ``crc``
    its checksum, computed *inside* the worker -- the parent re-checks
    it on receipt so a corrupted result is detected and re-dispatched
    rather than aggregated.
    """

    unit_id: int
    attempt: int
    worker_id: int
    elapsed_s: float
    payload: bytes
    crc: int


def _item_ok(value: Any) -> Tuple[str, Any]:
    return ("ok", value)


def _item_err(item: Any, error: BaseException, tb: str) -> Tuple[str, Any]:
    return ("err", (repr(item), repr(error), tb))


def _execute_item(
    task: Callable[[Any], Any], item: Any
) -> Tuple[str, Any]:
    """Run one item under supervision; exceptions become data."""
    try:
        return _item_ok(task(item))
    except Exception as error:  # noqa: BLE001 -- supervision boundary
        return _item_err(item, error, traceback_module.format_exc())


def _run_unit(
    task: Callable[[Any], Any],
    chaos: Optional[ChaosSpec],
    unit_id: int,
    attempt: int,
    items: Tuple[Tuple[int, Any], ...],
) -> _Envelope:
    """Execute one unit (inside a worker, or inline on the serial path).

    Chaos hooks: a ``crash``/``hang`` decision fires before any item
    runs (the whole point is losing the worker mid-campaign); an
    ``error`` decision makes the unit's first item raise; a ``corrupt``
    decision damages the payload *after* the CRC is computed.
    """
    decision = chaos_decision(chaos, unit_id, attempt)
    if chaos is not None:
        execute_pre_injection(chaos, decision, unit_id, attempt)
    started = time.perf_counter()
    outcomes: List[Tuple[str, Any]] = []
    for position, (index, item) in enumerate(items):
        if decision == ERROR and position == 0:
            error = injected_task_error(unit_id, attempt)
            outcomes.append(_item_err(item, error, ""))
            continue
        outcomes.append(_execute_item(task, item))
    payload = pickle.dumps(tuple(outcomes), protocol=4)
    crc = zlib.crc32(payload)
    if decision == CORRUPT:
        payload = corrupt_payload(payload)
    return _Envelope(
        unit_id=unit_id,
        attempt=attempt,
        worker_id=os.getpid(),
        elapsed_s=time.perf_counter() - started,
        payload=payload,
        crc=crc,
    )


def _worker_main(
    seq: int,
    task: Callable[[Any], Any],
    chaos: Optional[ChaosSpec],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Worker process loop: announce readiness, run units until told.

    The task callable arrives once, through the process arguments --
    never per chunk.  ``None`` on the task queue is the shutdown
    sentinel.
    """
    result_queue.put(("ready", seq))
    while True:
        payload = task_queue.get()
        if payload is None:
            return
        unit_id, attempt, items = payload
        envelope = _run_unit(task, chaos, unit_id, attempt, items)
        result_queue.put(("done", seq, envelope))


# -- parent-side supervision --------------------------------------------------


class _WorkerHandle:
    """Parent-side view of one owned worker process."""

    def __init__(self, seq: int, process: Any, task_queue: Any) -> None:
        self.seq = seq
        self.process = process
        self.task_queue = task_queue
        self.ready = False
        self.unit: Optional[_Unit] = None
        self.deadline: Optional[float] = None
        self.spawned_at = time.monotonic()

    def assign(self, unit: _Unit, deadline_s: Optional[float]) -> None:
        self.unit = unit
        self.deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        self.task_queue.put((unit.unit_id, unit.attempt, unit.items))

    def discard(self) -> None:
        """Tear the worker down without ceremony (death/timeout path)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.task_queue.close()
        self.task_queue.cancel_join_thread()


@dataclass
class _Ledger:
    """Mutable campaign state shared by the serial and parallel drains."""

    completed: Dict[int, Any] = field(default_factory=dict)
    quarantined: Dict[int, RunFailure] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    corrupt_chunks: int = 0
    journal_hits: int = 0
    worker_respawns: int = 0

    def stats(self) -> SupervisorStats:
        return SupervisorStats(
            retries=self.retries,
            timeouts=self.timeouts,
            worker_deaths=self.worker_deaths,
            corrupt_chunks=self.corrupt_chunks,
            quarantined=len(self.quarantined),
            journal_hits=self.journal_hits,
            worker_respawns=self.worker_respawns,
        )


class _Supervisor:
    """One campaign's supervision state machine."""

    def __init__(
        self,
        task: Callable[[Any], Any],
        policy: RetryPolicy,
        journal: Optional[CampaignJournal],
        chaos: Optional[ChaosSpec],
        progress: Any,
        ledger: _Ledger,
    ) -> None:
        self.task = task
        self.policy = policy
        self.journal = journal
        self.chaos = chaos
        self.progress = progress
        self.ledger = ledger
        self.units: Deque[_Unit] = deque()

    # -- outcome handling (shared by serial and parallel paths) --------------

    def handle_envelope(self, unit: _Unit, envelope: _Envelope) -> None:
        """Fold one returned unit into the ledger."""
        if zlib.crc32(envelope.payload) != envelope.crc:
            self.ledger.corrupt_chunks += 1
            self.fail_unit(
                unit,
                kind="corruption",
                error=(
                    f"chunk result failed its CRC integrity check "
                    f"(unit {unit.unit_id}, attempt {unit.attempt})"
                ),
            )
            return
        outcomes = pickle.loads(envelope.payload)
        succeeded: List[Tuple[int, Any]] = []
        failed: List[Tuple[Tuple[int, Any], Tuple[str, str, str]]] = []
        for (index, item), (status, value) in zip(unit.items, outcomes):
            if status == "ok":
                succeeded.append((index, value))
            else:
                failed.append(((index, item), value))
        if succeeded:
            for index, value in succeeded:
                self.ledger.completed[index] = value
            if self.journal is not None:
                self.journal.record_chunk(
                    [index for index, _ in succeeded],
                    [value for _, value in succeeded],
                )
            self.progress.update(
                len(succeeded), envelope.worker_id, envelope.elapsed_s
            )
        if failed:
            self.retry_or_quarantine(
                unit,
                tuple(pair for pair, _ in failed),
                kind="exception",
                errors={
                    pair[0]: (err, tb)
                    for pair, (_repr, err, tb) in failed
                },
            )

    def fail_unit(self, unit: _Unit, kind: str, error: str) -> None:
        """Charge a whole-unit failure (timeout, death, corruption)."""
        self.retry_or_quarantine(
            unit,
            unit.items,
            kind=kind,
            errors={index: (error, "") for index, _ in unit.items},
        )

    def retry_or_quarantine(
        self,
        unit: _Unit,
        failed_items: Tuple[Tuple[int, Any], ...],
        kind: str,
        errors: Dict[int, Tuple[str, str]],
    ) -> None:
        next_attempt = unit.attempt + 1
        if next_attempt <= self.policy.max_attempts:
            self.ledger.retries += len(failed_items)
            delay = self.policy.backoff_s(next_attempt)
            self.units.append(
                _Unit(
                    unit_id=unit.unit_id,
                    attempt=next_attempt,
                    items=failed_items,
                    delay_s=delay,
                    ready_at=time.monotonic() + delay,
                )
            )
            return
        for index, item in failed_items:
            error, tb = errors[index]
            failure = RunFailure(
                index=index,
                item_repr=repr(item),
                error=error,
                traceback=tb,
                attempts=unit.attempt,
                kind=kind,
            )
            self.ledger.quarantined[index] = failure
            if self.journal is not None:
                self.journal.record_quarantine(failure)
        self.progress.update(len(failed_items), "quarantine", 0.0)

    # -- serial drain --------------------------------------------------------

    def run_serial(self) -> None:
        while self.units:
            unit = self.units.popleft()
            if unit.delay_s > 0.0:
                time.sleep(unit.delay_s)
            envelope = _run_unit(
                self.task, self.chaos, unit.unit_id, unit.attempt, unit.items
            )
            self.handle_envelope(unit, envelope)

    # -- parallel drain ------------------------------------------------------

    def run_parallel(self, workers: int) -> None:
        context = get_context("spawn")
        result_queue = context.Queue()
        pool_size = min(workers, max(1, len(self.units)))
        pool: Dict[int, _WorkerHandle] = {}
        next_seq = 0
        startup_deaths = 0

        def spawn() -> None:
            nonlocal next_seq
            seq = next_seq
            next_seq += 1
            task_queue = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(seq, self.task, self.chaos, task_queue, result_queue),
                daemon=True,
            )
            process.start()
            pool[seq] = _WorkerHandle(seq, process, task_queue)

        def retire(handle: _WorkerHandle) -> None:
            pool.pop(handle.seq, None)
            handle.discard()

        def outstanding() -> int:
            return len(self.units) + sum(
                1 for handle in pool.values() if handle.unit is not None
            )

        try:
            for _ in range(pool_size):
                spawn()
            while outstanding() > 0:
                # 1) Drain every pending worker message.
                while True:
                    try:
                        message = result_queue.get(timeout=_POLL_S)
                    except queue_module.Empty:
                        break
                    if message[0] == "ready":
                        handle = pool.get(message[1])
                        if handle is not None:
                            handle.ready = True
                    elif message[0] == "done":
                        handle = pool.get(message[1])
                        envelope = message[2]
                        if handle is not None and handle.unit is not None:
                            unit, handle.unit = handle.unit, None
                            handle.deadline = None
                            self.handle_envelope(unit, envelope)
                now = time.monotonic()
                # 2) Liveness: a dead worker loses its unit, not the run.
                for handle in list(pool.values()):
                    if handle.process.exitcode is None:
                        continue
                    if not handle.ready and handle.unit is None:
                        startup_deaths += 1
                        if startup_deaths > _STARTUP_DEATH_BUDGET * pool_size:
                            raise ResilienceError(
                                f"{startup_deaths} worker(s) died before "
                                "initialising; the execution environment "
                                "is broken (import failure, OOM?)"
                            )
                    if handle.unit is not None:
                        self.ledger.worker_deaths += 1
                        unit = handle.unit
                        handle.unit = None
                        self.fail_unit(  # repro-lint: disable=REP007 -- journal record order is timing-dependent by design; determinism is restored by the ordered reduce at merge
                            unit,
                            kind="worker-death",
                            error=(
                                f"worker process died (exit code "
                                f"{handle.process.exitcode}) while running "
                                f"unit {unit.unit_id}, "
                                f"attempt {unit.attempt}"
                            ),
                        )
                    retire(handle)
                    if outstanding() > 0:
                        self.ledger.worker_respawns += 1
                        spawn()
                # 3) Watchdog deadlines: kill the hung worker, keep the run.
                for handle in list(pool.values()):
                    if (
                        handle.unit is None
                        or handle.deadline is None
                        or now <= handle.deadline
                    ):
                        continue
                    self.ledger.timeouts += 1
                    unit = handle.unit
                    handle.unit = None
                    self.fail_unit(  # repro-lint: disable=REP007 -- journal record order is timing-dependent by design; determinism is restored by the ordered reduce at merge
                        unit,
                        kind="timeout",
                        error=(
                            f"unit {unit.unit_id} (attempt {unit.attempt}, "
                            f"{len(unit.items)} run(s)) exceeded its "
                            f"{self.policy.deadline_s(len(unit.items))}s "
                            "watchdog deadline"
                        ),
                    )
                    retire(handle)
                    if outstanding() > 0:
                        self.ledger.worker_respawns += 1
                        spawn()
                # 4) Startup grace: workers must come up eventually.
                for handle in pool.values():
                    if (
                        not handle.ready
                        and now - handle.spawned_at
                        > self.policy.startup_grace_s
                    ):
                        raise ResilienceError(
                            f"worker {handle.seq} failed to initialise "
                            f"within {self.policy.startup_grace_s}s"
                        )
                # 5) Assign eligible units to idle, ready workers.
                self.assign_work(pool, now)
        finally:
            for handle in pool.values():
                if handle.process.is_alive():
                    try:
                        handle.task_queue.put(None)
                    except (OSError, ValueError):
                        pass
            for handle in pool.values():
                handle.process.join(timeout=2.0)
                handle.discard()
            result_queue.close()
            result_queue.cancel_join_thread()

    def assign_work(
        self, pool: Dict[int, _WorkerHandle], now: float
    ) -> None:
        idle = [
            handle
            for handle in pool.values()
            if handle.ready and handle.unit is None
        ]
        for handle in idle:
            unit = self.next_eligible_unit(now)
            if unit is None:
                return
            handle.assign(unit, self.policy.deadline_s(len(unit.items)))

    def next_eligible_unit(self, now: float) -> Optional[_Unit]:
        """Pop the first unit whose backoff has elapsed, if any."""
        for _ in range(len(self.units)):
            unit = self.units.popleft()
            if unit.ready_at <= now:
                return unit
            self.units.append(unit)
        return None


def run_supervised(
    task: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[CampaignJournal] = None,
    chaos: Optional[ChaosSpec] = None,
    progress: Optional[Any] = None,
    telemetry: Optional[Telemetry] = None,
) -> SupervisedOutcome:
    """Map ``task`` over ``items`` under full supervision.

    The crash-tolerant sibling of :func:`repro.parallel.executor.
    run_sharded`: same sharding, same submission-order reduce, same
    bit-identity contract for completed results -- plus retries,
    quarantine, a watchdog, journaled resume and chaos injection.

    Parameters mirror ``run_sharded`` where they overlap.  ``policy``
    configures retries/backoff/deadlines; ``journal`` enables
    checkpointed resume (completed work found in it is skipped);
    ``chaos`` injects seeded infrastructure faults (test harness --
    crash/hang injection needs ``workers > 1``).  ``task`` must be a
    pure, picklable function of its item: that purity is what makes a
    retry bit-identical to a first attempt.

    Returns a :class:`SupervisedOutcome`; call
    :meth:`~SupervisedOutcome.require_complete` for fail-stop
    semantics.
    """
    if workers < 1:
        raise ModelParameterError(f"workers must be >= 1, got {workers}")
    policy = policy or RetryPolicy()
    if (
        chaos is not None
        and chaos.kills_workers
        and workers == 1
    ):
        raise ModelParameterError(
            "chaos crash/hang injection kills worker processes and needs "
            "workers > 1; the serial path runs in the campaign process"
        )
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    progress = progress or NullProgress()
    work = list(items)
    ledger = _Ledger()

    if journal is not None:
        state = journal.load()
        for index, value in state.results.items():
            if 0 <= index < len(work):
                ledger.completed[index] = value
        for failure in state.failures:
            if failure.index < len(work):
                ledger.quarantined.setdefault(failure.index, failure)
        # A journaled result trumps a journaled quarantine: the run
        # evidently completed on a later attempt or session.
        for index in ledger.completed:
            ledger.quarantined.pop(index, None)
        ledger.journal_hits = len(ledger.completed)

    remaining = [
        (index, item)
        for index, item in enumerate(work)
        if index not in ledger.completed
        and index not in ledger.quarantined
    ]
    resolved_chunk = (
        chunk_size
        if chunk_size is not None
        else default_chunk_size(len(work), workers)
    )
    if resolved_chunk < 1:
        raise ModelParameterError(
            f"chunk size must be >= 1, got {resolved_chunk}"
        )
    supervisor = _Supervisor(
        task, policy, journal, chaos, progress, ledger
    )
    supervisor.units.extend(
        _Unit(unit_id=unit_id, attempt=1, items=tuple(chunk))
        for unit_id, chunk in enumerate(
            remaining[start : start + resolved_chunk]
            for start in range(0, len(remaining), resolved_chunk)
        )
        if chunk
    )

    progress.start(len(work), workers)
    try:
        if ledger.journal_hits:
            progress.update(ledger.journal_hits, "journal", 0.0)
        if supervisor.units:
            # Single-unit workloads drop to the in-process path --
            # unless chaos can kill the process running the unit, in
            # which case a real worker is required for recovery.
            serial_ok = chaos is None or not chaos.kills_workers
            if workers == 1 or (len(supervisor.units) <= 1 and serial_ok):
                supervisor.run_serial()
            else:
                supervisor.run_parallel(workers)
    finally:
        progress.finish()

    stats = ledger.stats()
    for name, value in (
        ("resilience.retries", stats.retries),
        ("resilience.timeouts", stats.timeouts),
        ("resilience.worker_deaths", stats.worker_deaths),
        ("resilience.corrupt_chunks", stats.corrupt_chunks),
        ("resilience.quarantined", stats.quarantined),
        ("resilience.journal_hits", stats.journal_hits),
        ("resilience.worker_respawns", stats.worker_respawns),
    ):
        # Only non-zero counters are emitted, so a clean campaign's
        # telemetry stays byte-identical to the unsupervised path's.
        if value:
            tel.count(name, float(value))

    ordered = sorted(ledger.completed)
    return SupervisedOutcome(
        results=tuple(ledger.completed[index] for index in ordered),
        indices=tuple(ordered),
        failures=tuple(
            ledger.quarantined[index]
            for index in sorted(ledger.quarantined)
        ),
        stats=stats,
    )
