"""Crash-tolerant campaign execution: supervision, journaling, chaos.

The supervised runtime around :mod:`repro.parallel`: run campaigns that
survive task exceptions, hung and killed workers, and interruption of
the campaign process itself -- without compromising the repo's
bit-identity contract.  See ``docs/resilience.md`` for the failure
model and :func:`run_supervised` for the entry point.
"""

from repro.resilience.chaos import (
    ChaosInjectedError,
    ChaosSpec,
    chaos_decision,
    corrupt_payload,
    execute_pre_injection,
    injected_task_error,
)
from repro.resilience.journal import CampaignJournal, JournalState
from repro.resilience.records import (
    FAILURE_KINDS,
    RetryPolicy,
    RunFailure,
    SupervisedOutcome,
    SupervisorStats,
)
from repro.resilience.supervisor import ResilienceConfig, run_supervised

__all__ = [
    "CampaignJournal",
    "ChaosInjectedError",
    "ChaosSpec",
    "FAILURE_KINDS",
    "JournalState",
    "ResilienceConfig",
    "RetryPolicy",
    "RunFailure",
    "SupervisedOutcome",
    "SupervisorStats",
    "chaos_decision",
    "corrupt_payload",
    "execute_pre_injection",
    "injected_task_error",
    "run_supervised",
]
