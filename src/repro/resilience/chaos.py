"""Deterministic fault injection for the campaign executor itself.

:mod:`repro.faults` perturbs the *simulated hardware* (comparators,
capacitors, light); this module applies the same philosophy to the
*infrastructure*: seeded, reproducible injection of worker crashes,
hangs, task exceptions and corrupted chunk results, so every recovery
path in :mod:`repro.resilience.supervisor` is proven by tests instead
of asserted in prose.

Decisions are a pure function of ``(spec.seed, unit_id, attempt)`` --
no RNG state, no wall clock -- so a chaos campaign is exactly as
replayable as a fault campaign: the same spec always kills the same
workers at the same points, on every machine, at any worker count.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ModelParameterError

#: Injection kinds, in threshold-stacking order.
CRASH = "crash"
HANG = "hang"
ERROR = "error"
CORRUPT = "corrupt"


class ChaosInjectedError(RuntimeError):
    """The exception raised by an injected task failure.

    Deliberately *not* a :class:`repro.errors.ReproError`: injected
    failures stand in for arbitrary third-party exceptions, and the
    supervisor must not be able to special-case them.
    """


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded failure-injection plan for one supervised campaign.

    Rates are per dispatched work unit (chunk), stacked in the order
    crash, hang, error, corrupt: one uniform draw per ``(unit,
    attempt)`` lands in at most one band, so the rates must sum to at
    most 1.  With ``first_attempt_only`` (the default) a unit is only
    sabotaged on its first attempt -- the retry then succeeds, which is
    exactly the shape needed to prove recovery yields bit-identical
    results.  ``poison_units`` names unit ids whose task raises on
    *every* attempt regardless of rates: the deterministic way to drive
    a run into quarantine.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_s: float = 3600.0
    first_attempt_only: bool = True
    poison_units: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        rates = {
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "error_rate": self.error_rate,
            "corrupt_rate": self.corrupt_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ModelParameterError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        # Summed in declaration order (not over the dict view) so the
        # float accumulation order is pinned by the source, not by
        # dict construction history.
        total = (
            self.crash_rate
            + self.hang_rate
            + self.error_rate
            + self.corrupt_rate
        )
        if total > 1.0:
            raise ModelParameterError(
                f"injection rates must sum to <= 1, got {total}"
            )
        if self.hang_s <= 0.0:
            raise ModelParameterError(
                f"hang duration must be positive, got {self.hang_s}"
            )

    @property
    def any_injection(self) -> bool:
        """True when this spec can inject anything at all."""
        return bool(
            self.crash_rate
            or self.hang_rate
            or self.error_rate
            or self.corrupt_rate
            or self.poison_units
        )

    @property
    def kills_workers(self) -> bool:
        """True when this spec can crash or hang a worker process.

        Those two injections are only recoverable with real worker
        processes (``workers > 1``); the supervisor rejects them on the
        in-process serial path, where a crash would kill the campaign
        itself.
        """
        return bool(self.crash_rate or self.hang_rate)


def _uniform(seed: int, unit_id: int, attempt: int) -> float:
    """One deterministic uniform draw in ``[0, 1)`` per decision point."""
    digest = hashlib.sha256(
        f"chaos:{seed}:{unit_id}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(2**64)


def chaos_decision(
    spec: Optional[ChaosSpec], unit_id: int, attempt: int
) -> Optional[str]:
    """What (if anything) to inject for this ``(unit, attempt)``.

    Pure in its arguments: serial and parallel executions of the same
    campaign make identical decisions, which is what keeps chaos runs
    inside the bit-identity contract.
    """
    if spec is None or not spec.any_injection:
        return None
    if unit_id in spec.poison_units:
        return ERROR
    if spec.first_attempt_only and attempt > 1:
        return None
    draw = _uniform(spec.seed, unit_id, attempt)
    threshold = spec.crash_rate
    if draw < threshold:
        return CRASH
    threshold += spec.hang_rate
    if draw < threshold:
        return HANG
    threshold += spec.error_rate
    if draw < threshold:
        return ERROR
    threshold += spec.corrupt_rate
    if draw < threshold:
        return CORRUPT
    return None


def execute_pre_injection(
    spec: ChaosSpec, decision: Optional[str], unit_id: int, attempt: int
) -> None:
    """Perform a crash/hang injection before a unit runs (worker side).

    ``crash`` exits the process without cleanup, exactly as a segfault
    or OOM kill would look from the parent; ``hang`` sleeps well past
    any sane watchdog deadline so the supervisor must kill the worker.
    ``error``/``corrupt`` decisions are handled inside the unit runner
    (per-item exception, post-CRC payload damage) and pass through
    here untouched.
    """
    if decision == CRASH:
        os._exit(113)
    if decision == HANG:
        time.sleep(spec.hang_s)
        raise ChaosInjectedError(
            f"injected hang outlived its watchdog "
            f"(unit {unit_id}, attempt {attempt})"
        )


def injected_task_error(unit_id: int, attempt: int) -> ChaosInjectedError:
    """The exception an ``error`` decision makes the task raise."""
    return ChaosInjectedError(
        f"injected task failure (unit {unit_id}, attempt {attempt})"
    )


def corrupt_payload(payload: bytes) -> bytes:
    """Flip the first byte of a chunk payload (post-CRC damage).

    The envelope's CRC was computed over the pristine bytes, so the
    parent's integrity check must reject this result and re-dispatch
    the unit -- the executor-level analogue of the NVM checkpoint
    bit-flips in :mod:`repro.faults.models`.
    """
    if not payload:
        return payload
    return bytes([payload[0] ^ 0xFF]) + payload[1:]
