"""Exception hierarchy for :mod:`repro`.

All exceptions raised deliberately by the library derive from
:class:`ReproError` so callers can catch the whole family with one
``except`` clause while still discriminating the specific failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ModelParameterError(ReproError, ValueError):
    """A model was constructed with physically meaningless parameters.

    Examples: a negative capacitance, a conversion efficiency above 1,
    a threshold voltage above the supply range.
    """


class OperatingRangeError(ReproError, ValueError):
    """A component was asked to operate outside its valid range.

    Examples: requesting a regulator output above its input voltage,
    evaluating processor frequency at a negative supply.
    """


class InfeasibleOperatingPointError(ReproError):
    """No operating point satisfies the requested constraints.

    Raised by the optimizers when, e.g., the harvested power cannot
    sustain even the minimum-voltage / minimum-frequency setting, or a
    deadline is shorter than the fastest possible execution.
    """


class ConvergenceError(ReproError, RuntimeError):
    """A numerical solver failed to converge within its iteration budget."""


class SimulationError(ReproError, RuntimeError):
    """The transient simulator entered an invalid state.

    Examples: non-finite node voltage, event queue corruption, a step
    size that collapsed to zero.
    """


class BrownoutError(SimulationError):
    """The supply voltage fell below the minimum operating voltage.

    Carries the simulation time at which the brownout occurred so
    schedulers and tests can reason about how far execution got.
    """

    def __init__(self, message: str, time_s: float) -> None:
        super().__init__(message)
        self.time_s = time_s


class CheckpointError(ReproError, RuntimeError):
    """Raised by the intermittent-computing runtime on checkpoint misuse."""


class ResilienceError(ReproError, RuntimeError):
    """The supervised campaign executor could not keep its contract.

    Examples: worker processes that never initialise within the startup
    grace period, a journal whose campaign key does not match the work
    being resumed.
    """


class JournalError(ResilienceError):
    """A campaign journal cannot be used for the requested campaign.

    Raised when a journal file's header names a different campaign key
    than the one being executed -- resuming someone else's journal
    would silently splice foreign results into the summary.
    """


class QuarantineError(ResilienceError):
    """Runs were quarantined and the caller demanded a complete result.

    Carries the structured per-run failures so hours of completed work
    are still attached to the error instead of being discarded.
    """

    def __init__(self, message: str, failures: "tuple" = ()) -> None:
        super().__init__(message)
        self.failures = failures


class TelemetryError(ReproError, RuntimeError):
    """Telemetry misuse: unbalanced spans, conflicting metric kinds,
    mismatched histogram bucket edges.

    Instrumentation is observability-only, so these raise eagerly --
    a silently wrong trace is worse than no trace.
    """
