#!/usr/bin/env python3
"""A battery-less camera node classifying frames under varying light.

The scenario the paper's introduction motivates: a solar-powered IoT
node with no battery runs a pattern-recognition workload.  This example
wires every layer together:

1. the functional image pipeline classifies synthetic frames and
   reports the cycle cost of each (the chip of Fig. 10);
2. the holistic optimizer picks the operating point for the current
   (estimated) light;
3. the transient simulator executes frame after frame from harvested
   energy, with the MPP-tracking controller riding through a cloud
   passing overhead.

Run:  python examples/image_recognition_node.py
"""

from repro import paper_system
from repro.core.mppt import DischargeTimeMppTracker, MppTrackingController
from repro.processor.image import FrameGenerator, ImageProcessor
from repro.pv.traces import cloud_trace
from repro.sim.engine import SimulationConfig, TransientSimulator


def main() -> None:
    system = paper_system()

    # --- the application: train and run the recognition pipeline -------
    pipeline = ImageProcessor()
    pipeline.train_on_patterns(samples_per_class=4, seed=7)
    generator = FrameGenerator(seed=2024)

    print("Recognition pipeline (64x64 frames):")
    correct = 0
    frames_to_run = 10
    for i in range(frames_to_run):
        frame, truth = generator.frame(i)
        result = pipeline.recognise(frame)
        mark = "ok " if result.label == truth else "MISS"
        correct += result.label == truth
        print(
            f"  frame {i}: predicted {result.label:16s} truth {truth:16s} "
            f"[{mark}] ({result.cycles / 1e6:.2f}M cycles)"
        )
    print(f"  accuracy: {correct}/{frames_to_run}\n")

    # --- the energy side: run the frames on harvested power ------------
    workload = pipeline.workload(frame_size=64, deadline_s=None).repeated(
        frames_to_run
    )
    tracker = DischargeTimeMppTracker(system, "sc")
    controller = MppTrackingController(tracker, initial_irradiance=0.8)
    trace = cloud_trace(
        base=0.8, dip=0.25, cloud_start_s=40e-3, cloud_duration_s=60e-3,
        total_duration_s=250e-3,
    )
    simulator = TransientSimulator(
        cell=system.cell,
        node_capacitor=system.new_node_capacitor(system.mpp(0.8).voltage_v),
        processor=system.processor,
        regulator=system.regulator("sc"),
        controller=controller,
        comparators=system.new_comparator_bank(),
        workload=workload,
        config=SimulationConfig(
            time_step_s=20e-6, record_every=16, stop_on_brownout=False
        ),
    )
    result = simulator.run(trace)

    print("Energy-harvesting execution (cloud passes at t = 40 ms):")
    frames_done = min(
        result.final_cycles / workload.cycles * frames_to_run, frames_to_run
    )
    print(f"  frames completed: {frames_done:.1f} of {frames_to_run}")
    print(f"  all {frames_to_run} frames done: {result.completed} "
          f"(t = {0.0 if result.completion_time_s is None else result.completion_time_s * 1e3:.1f} ms)")
    print(f"  harvested energy: {result.harvested_energy_j() * 1e6:.0f} uJ")
    print(f"  delivered to core: {result.consumed_energy_j() * 1e6:.0f} uJ")
    print(f"  MPPT retunes during the cloud: {len(controller.retunes)}")
    for record in controller.retunes:
        kind = "measured" if record.estimate is not None else "probe"
        print(
            f"    t = {record.time_s * 1e3:6.1f} ms -> irradiance estimate "
            f"{record.estimated_irradiance:.2f} ({kind})"
        )
    print(f"  node voltage range: {result.min_node_voltage_v():.2f} V .. "
          f"{result.node_voltage_v.max():.2f} V (no brownout: "
          f"{not result.browned_out})")


if __name__ == "__main__":
    main()
