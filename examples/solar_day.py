#!/usr/bin/env python3
"""A battery-less node through one (compressed) cloudy day.

Long-horizon scenario: a diurnal irradiance profile -- night, a cloudy
half-sine of daylight, night again -- compressed onto a simulable
timescale.  The MPP-tracking controller rides the whole arc: parked
(survival point) in the dark, tracking up through dawn, shedding cloud
dips, and winding back down at dusk.  The run reports how many
recognition frames' worth of compute the day funded and when.

Also re-runs the day with a thermoelectric harvester in place of the
solar cell (body heat has no diurnal arc -- a constant trickle), to
contrast the two sources the library models.

Run:  python examples/solar_day.py
"""

import numpy as np

from repro import paper_system
from repro.core.mppt import DischargeTimeMppTracker, MppTrackingController
from repro.core.system import EnergyHarvestingSoC
from repro.harvesters import wearable_teg
from repro.processor.workloads import IMAGE_FRAME_CYCLES
from repro.pv.traces import constant_trace, diurnal_trace
from repro.sim.engine import SimulationConfig, TransientSimulator

#: One "day" compressed to 20 simulated seconds.
DAY_SECONDS = 20.0


def run_day(system, trace, label, initial_irradiance):
    tracker = DischargeTimeMppTracker(system, "sc")
    controller = MppTrackingController(tracker, initial_irradiance)
    simulator = TransientSimulator(
        cell=system.cell,
        node_capacitor=system.new_node_capacitor(0.8),
        processor=system.processor,
        regulator=system.regulator("sc"),
        controller=controller,
        comparators=system.new_comparator_bank(),
        config=SimulationConfig(
            time_step_s=200e-6, record_every=50, stop_on_brownout=False
        ),
    )
    result = simulator.run(trace)
    frames = result.final_cycles / IMAGE_FRAME_CYCLES
    print(f"{label}:")
    print(f"  harvested {result.harvested_energy_j() * 1e3:.2f} mJ, "
          f"delivered {result.consumed_energy_j() * 1e3:.2f} mJ to the core")
    print(f"  compute funded: {frames:.0f} recognition frames")
    print(f"  controller retunes: {len(controller.retunes)}")
    # Frame production per day phase (thirds of the span).
    edges = np.linspace(result.time_s[0], result.time_s[-1], 4)
    labels = ("morning", "midday", "evening")
    for i, phase in enumerate(labels):
        mask = (result.time_s >= edges[i]) & (result.time_s < edges[i + 1])
        cycles = float(
            np.trapezoid(result.frequency_hz[mask], result.time_s[mask])
        )
        print(f"    {phase:8s} {cycles / IMAGE_FRAME_CYCLES:6.0f} frames")
    return result


def main() -> None:
    solar = paper_system()
    day = diurnal_trace(
        DAY_SECONDS, peak=1.0, night_fraction=0.25, cloud_seed=11,
        cloud_depth=0.5,
    )
    print(f"One cloudy day compressed to {DAY_SECONDS:.0f} s "
          f"(mean irradiance {day.mean():.2f}).\n")
    run_day(solar, day, "Solar cell (diurnal + clouds)", 0.05)

    print()
    teg_system = EnergyHarvestingSoC(
        cell=wearable_teg(),
        processor=solar.processor,
        regulators=solar.regulators,
        comparator_thresholds_v=(0.70, 0.60, 0.50),
    )
    steady = constant_trace(0.8, DAY_SECONDS)
    run_day(
        teg_system, steady,
        "Thermoelectric (body heat, steady 80% gradient)", 0.8,
    )
    print(
        "\nThe TEG trickles all day while the solar node feasts and "
        "starves -- the same holistic machinery schedules both."
    )


if __name__ == "__main__":
    main()
