#!/usr/bin/env python3
"""Deadline execution under dimming light: sprinting and bypass.

Reproduces the paper's Section VI-B / Fig. 11(b) story as a runnable
scenario: a frame must complete by a deadline; the light dims right
after the job starts; three schedules race:

* constant speed (the conventional baseline),
* the sprint schedule with the bypass switch disabled,
* the full scheme: slow early, sprint late, bypass the regulator when
  the node can no longer sustain it.

Run:  python examples/sprint_deadline.py
"""

from repro import paper_system
from repro.baselines.fixed_speed import FixedSpeedBaseline
from repro.core.sprint import SprintController, SprintScheduler
from repro.processor.workloads import image_frame_workload
from repro.pv.traces import step_trace
from repro.sim.engine import SimulationConfig, TransientSimulator


def describe(name, result):
    status = "completed" if result.completed else "DID NOT FINISH"
    when = (
        f" at {result.completion_time_s * 1e3:.2f} ms"
        if result.completion_time_s is not None
        else ""
    )
    stall = " (stalled at converter dropout)" if result.browned_out else ""
    print(f"  {name:24s} {status}{when}{stall}")
    print(
        f"  {'':24s} node sagged to {result.min_node_voltage_v():.2f} V, "
        f"harvested {result.harvested_energy_j() * 1e6:.0f} uJ, "
        f"bypass time {result.time_in_mode('bypass') * 1e3:.1f} ms"
    )


def main() -> None:
    system = paper_system()
    deadline_s = 10e-3
    dim_to = 0.35
    workload = image_frame_workload(deadline_s)
    scheduler = SprintScheduler(system, "buck", sprint_factor=0.2)
    v_start = system.mpp(1.0).voltage_v
    plan = scheduler.plan(workload, v_start)

    print(
        f"One 64x64 frame ({workload.cycles / 1e6:.2f}M cycles), deadline "
        f"{deadline_s * 1e3:.0f} ms; light dims 1.0 -> {dim_to} at 1 ms.\n"
    )
    print(
        f"Sprint plan: regulate {plan.output_voltage_v:.2f} V, run "
        f"{plan.slow_frequency_hz / 1e6:.0f} MHz while node > "
        f"{plan.accelerate_below_v:.2f} V, sprint at "
        f"{plan.fast_frequency_hz / 1e6:.0f} MHz below, bypass below "
        f"{plan.bypass_below_v:.2f} V.\n"
    )

    trace = step_trace(1.0, dim_to, 1e-3, 40e-3)

    def run(controller):
        simulator = TransientSimulator(
            cell=system.cell,
            node_capacitor=system.new_node_capacitor(v_start),
            processor=system.processor,
            regulator=system.regulator("buck"),
            controller=controller,
            workload=workload,
            config=SimulationConfig(
                time_step_s=2e-6, record_every=8, stop_on_brownout=False
            ),
        )
        return simulator.run(trace)

    baseline = FixedSpeedBaseline(system, "buck")
    constant = run(baseline.controller(workload))
    no_bypass = run(SprintController(plan, allow_bypass=False))
    full = run(SprintController(plan, allow_bypass=True))

    print("Results:")
    describe("constant speed", constant)
    describe("sprint, no bypass", no_bypass)
    describe("sprint + bypass", full)

    # The eq. (12) first-order intake analysis at bench capacitance.
    bench = SprintScheduler(
        paper_system(node_capacitance_f=47e-6), "buck", sprint_factor=0.2
    )
    const_j, sprint_j = bench.analytic_extra_solar_energy(
        workload, dim_to, v_start
    )
    print(
        f"\nFirst-order eq. (12) sprint intake gain: "
        f"{sprint_j / const_j - 1.0:+.1%} (paper: ~+10% at a 20% rate)."
    )
    regulated, with_bypass = scheduler.bypass_energy_extension(
        plan.output_voltage_v
    )
    print(
        f"Bypass unlocks {with_bypass / regulated - 1.0:+.1%} more of the "
        f"node capacitor's energy (paper: ~25%)."
    )


if __name__ == "__main__":
    main()
