#!/usr/bin/env python3
"""Discharge-time MPP tracking through abrupt light changes (Fig. 8).

The paper's Section VI-A scheme, end to end: the system runs at the
full-light operating point; the light is dimmed abruptly; the solar
node discharges through the board comparators; the controller derives
the new input power from the crossing interval (eq. 7), looks up the
new MPP, and retunes DVFS.  Later the light returns and the controller
probes its way back up.

Prints an ASCII strip chart of the node voltage so the Fig. 8(c)
waveform is visible in a terminal.

Run:  python examples/mppt_dynamic_light.py
"""

import numpy as np

from repro import paper_system
from repro.core.mppt import DischargeTimeMppTracker, MppTrackingController
from repro.pv.traces import concatenate, step_trace
from repro.sim.engine import SimulationConfig, TransientSimulator


def strip_chart(times_s, values, width=72, height=12, label="V"):
    """Render a small ASCII chart of a waveform."""
    t = np.asarray(times_s)
    v = np.asarray(values)
    columns = np.linspace(t[0], t[-1], width)
    sampled = np.interp(columns, t, v)
    lo, hi = float(v.min()), float(v.max())
    span = max(hi - lo, 1e-9)
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        line = "".join("#" if s >= threshold else " " for s in sampled)
        rows.append(f"{threshold:5.2f} |{line}")
    rows.append(" " * 6 + "+" + "-" * width)
    rows.append(
        " " * 7 + f"{t[0] * 1e3:.0f} ms" + " " * (width - 14)
        + f"{t[-1] * 1e3:.0f} ms"
    )
    return "\n".join(rows)


def main() -> None:
    system = paper_system()
    tracker = DischargeTimeMppTracker(system, "sc")
    controller = MppTrackingController(tracker, initial_irradiance=1.0)

    trace = concatenate(
        [
            step_trace(1.0, 0.3, 10e-3, 60e-3),   # dim at t = 10 ms
            step_trace(0.3, 1.0, 10e-3, 60e-3),   # recover at t = 70 ms
        ]
    )
    simulator = TransientSimulator(
        cell=system.cell,
        node_capacitor=system.new_node_capacitor(system.mpp(1.0).voltage_v),
        processor=system.processor,
        regulator=system.regulator("sc"),
        controller=controller,
        comparators=system.new_comparator_bank(),
        config=SimulationConfig(
            time_step_s=10e-6, record_every=16, stop_on_brownout=False
        ),
    )
    result = simulator.run(trace)

    print("Solar node voltage (dim at 10 ms, recover at 70 ms):\n")
    print(strip_chart(result.time_s, result.node_voltage_v))
    print(
        f"\nComparator thresholds: "
        f"{', '.join(f'{t:.2f} V' for t in system.comparator_thresholds_v)}"
    )
    print(f"True MPP voltage at 1.0 sun: {system.mpp(1.0).voltage_v:.3f} V, "
          f"at 0.3 sun: {system.mpp(0.3).voltage_v:.3f} V\n")

    print("Controller retunes:")
    for record in controller.retunes:
        if record.estimate is not None:
            basis = (
                f"eq.(7) Pin = {record.estimate.input_power_w * 1e3:.2f} mW "
                f"from a {record.estimate.interval_s * 1e3:.2f} ms "
                f"{record.estimate.upper_v:.2f}->{record.estimate.lower_v:.2f} V"
                " crossing"
            )
        else:
            basis = "surplus probe"
        point = record.new_point
        print(
            f"  t = {record.time_s * 1e3:6.1f} ms: irradiance -> "
            f"{record.estimated_irradiance:.2f} ({basis}); new point "
            f"{point.frequency_hz / 1e6:.0f} MHz @ "
            f"{point.processor_voltage_v:.2f} V"
        )

    final_v = float(result.node_voltage_v[-1])
    print(
        f"\nFinal node voltage {final_v:.3f} V vs full-sun MPP "
        f"{system.mpp(1.0).voltage_v:.3f} V -- the tracker re-parked the "
        "cell at its maximum power point."
    )


if __name__ == "__main__":
    main()
