#!/usr/bin/env python3
"""Charge-burst intermittent execution versus holistic scheduling.

The paper's introduction cites the intermittent-computing line of work
(Hibernus++, Alpaca): when the harvest cannot sustain continuous
operation, a node charge-bursts -- boot, compute, brown out, recharge
-- and needs task atomicity plus checkpointing to make forward
progress.  This example runs one recognition frame both ways on the
same harvested-energy substrate:

* as an intermittent task chain at weak light (charge bursts,
  checkpoints, wasted re-execution), and
* as a holistically scheduled continuous job at stronger light.

Run:  python examples/intermittent_node.py
"""

from repro import paper_system
from repro.intermittent import IntermittentRuntime, TaskChain
from repro.processor.workloads import image_frame_workload
from repro.pv.traces import constant_trace


def main() -> None:
    # A small node capacitor: single bursts cannot fund a whole frame.
    system = paper_system(node_capacitance_f=22e-6)
    frame = image_frame_workload(None)

    print(
        f"One 64x64 recognition frame = {frame.cycles / 1e6:.2f}M cycles; "
        f"node capacitor {system.node_capacitance_f * 1e6:.0f} uF.\n"
    )

    # --- decompose into atomic tasks and run at weak light -------------
    def bump(state):
        return {**state, "windows": state.get("windows", 0) + 1}

    chain = TaskChain.evenly_split("frame", frame.cycles, 24, action=bump)
    runtime = IntermittentRuntime(
        system,
        chain,
        operating_voltage_v=0.5,
        power_on_v=1.0,
        power_off_v=0.55,
        boot_cycles=20_000,
    )
    runtime.check_granularity()
    print(
        f"Burst budget: ~{runtime.cycles_per_burst() / 1e3:.0f}k cycles per "
        f"charge ({runtime.energy_per_burst_j() * 1e6:.1f} uJ usable)."
    )

    weak = runtime.run(constant_trace(0.05, 4.0))
    print("\nIntermittent execution at 5% sun:")
    print(f"  completed: {weak.completed} "
          f"(t = {(weak.completion_time_s or 0) * 1e3:.0f} ms)")
    print(f"  reboots: {weak.reboots}, tasks committed: "
          f"{weak.tasks_committed}/{len(chain)}")
    print(f"  cycles executed {weak.executed_cycles / 1e6:.2f}M, wasted "
          f"{weak.wasted_cycles / 1e3:.0f}k "
          f"({weak.waste_fraction:.1%} re-execution overhead)")
    print(f"  powered {weak.on_time_s * 1e3:.0f} ms of "
          f"{(weak.on_time_s + weak.off_time_s) * 1e3:.0f} ms "
          f"({weak.on_time_s / (weak.on_time_s + weak.off_time_s):.1%} duty)")

    # --- granularity matters: a coarse chain at the same light ---------
    coarse = IntermittentRuntime(
        system,
        TaskChain.evenly_split("frame", frame.cycles, 12, action=bump),
        operating_voltage_v=0.5,
        power_on_v=1.0,
        power_off_v=0.55,
        boot_cycles=20_000,
    ).run(constant_trace(0.05, 4.0))
    print(
        f"\nSame run with 12 coarse tasks instead of 24: wasted "
        f"{coarse.wasted_cycles / 1e3:.0f}k cycles over {coarse.reboots} "
        f"reboots vs {weak.wasted_cycles / 1e3:.0f}k -- finer atomic tasks "
        "lose less work per power failure."
    )

    # And a task bigger than one burst can never finish at all:
    monolith = IntermittentRuntime(
        system,
        TaskChain.evenly_split("frame", frame.cycles, 4),
        operating_voltage_v=0.5,
        power_on_v=1.0,
        power_off_v=0.55,
        boot_cycles=20_000,
    )
    try:
        monolith.check_granularity()
    except Exception as error:
        print(f"\n4-task decomposition rejected: {error}")


if __name__ == "__main__":
    main()
