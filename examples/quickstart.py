#!/usr/bin/env python3
"""Quickstart: plan every energy-management policy and compare them.

Builds the paper's demonstration system (KXOB22 solar cell, the three
65 nm on-chip regulators, the image processor), asks the
HolisticEnergyManager for an operating plan under each policy at full
sun, and prints the resulting clock/power table -- the one-paragraph
version of the paper's Section IV result.

Run:  python examples/quickstart.py
"""

from repro import HolisticEnergyManager, Policy, paper_system
from repro.processor import image_frame_workload


def main() -> None:
    system = paper_system()
    manager = HolisticEnergyManager(system, regulator_name="sc")
    workload = image_frame_workload(deadline_s=15e-3)

    mpp = system.mpp(1.0)
    print("Battery-less energy-harvesting SoC, full sun")
    print(
        f"  solar MPP: {mpp.power_w * 1e3:.1f} mW at {mpp.voltage_v:.2f} V\n"
    )
    print(f"{'policy':28s} {'Vdd [V]':>8s} {'clock [MHz]':>12s} "
          f"{'P to core [mW]':>15s} {'bypass':>7s}")

    for policy in Policy:
        plan = manager.plan(policy, irradiance=1.0, workload=workload)
        if plan.is_sprint:
            sprint = plan.sprint_plan
            print(
                f"{policy.value:28s} {sprint.output_voltage_v:8.3f} "
                f"{sprint.slow_frequency_hz / 1e6:5.0f}-"
                f"{sprint.fast_frequency_hz / 1e6:<6.0f} "
                f"{'(deadline sprint)':>15s} {'at end':>7s}"
            )
            continue
        point = plan.operating_point
        print(
            f"{policy.value:28s} {point.processor_voltage_v:8.3f} "
            f"{point.frequency_hz / 1e6:12.0f} "
            f"{point.delivered_power_w * 1e3:15.2f} "
            f"{str(point.bypassed):>7s}"
        )

    raw = manager.plan(Policy.RAW_SOLAR, 1.0).operating_point
    best = manager.plan(Policy.HOLISTIC_PERFORMANCE, 1.0).operating_point
    print(
        f"\nHolistic co-optimization vs direct connection: "
        f"{best.delivered_power_w / raw.delivered_power_w - 1.0:+.1%} power, "
        f"{best.frequency_hz / raw.frequency_hz - 1.0:+.1%} speed "
        f"(paper: +31% / +18%)."
    )


if __name__ == "__main__":
    main()
