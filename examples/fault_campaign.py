#!/usr/bin/env python3
"""Monte Carlo robustness campaign over seeded hardware faults.

The paper's schemes are evaluated on an ideal chip; a deployed node
gets comparator offsets, capacitor leakage, derated converters and
flickering, soiled light.  This example fans seeded fault draws across
the transient simulator for both the holistic MPP-tracking scheme and
a conventional fixed operating point, then runs the checkpointed
intermittent runtime with checkpoint bit flips injected mid-run.

Run:  python examples/fault_campaign.py
"""

from dataclasses import replace

from repro.faults import (
    CampaignConfig,
    FaultSpec,
    IntermittentCampaignConfig,
    run_intermittent_campaign,
    run_transient_campaign,
)


def main() -> None:
    # A harsh but plausible bench: 80 mV comparator offset sigma and
    # deep 120 Hz light flicker (the faults the estimator feels most).
    spec = FaultSpec(
        comparator_offset_sigma_v=80e-3,
        flicker_depth_max=0.6,
    )

    print("Transient campaign: 20 seeded draws, dimmed-light stress")
    print(f"{'metric':28s} {'holistic':>10s} {'fixed':>10s}")
    summaries = {}
    for scheme in ("holistic", "fixed"):
        config = CampaignConfig(runs=20, scheme=scheme)
        summaries[scheme] = run_transient_campaign(spec, config).as_dict()
    for key in summaries["holistic"]:
        print(
            f"{key:28s} {summaries['holistic'][key]:>10.4g} "
            f"{summaries['fixed'][key]:>10.4g}"
        )

    print()
    print("Intermittent campaign: charge bursts + checkpoint bit flips")
    inter = run_intermittent_campaign(
        replace(spec, checkpoint_corruption_rate=0.5),
        IntermittentCampaignConfig(runs=20),
    )
    for key, value in inter.as_dict().items():
        print(f"{key:28s} {value:>10.4g}")


if __name__ == "__main__":
    main()
